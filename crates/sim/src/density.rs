//! Density-matrix simulation for exact modelling of noisy circuits.
//!
//! The density-matrix engine stores the full `2^n × 2^n` operator and applies
//! gates as `ρ → U ρ U†` and noise channels as `ρ → Σ_k K_k ρ K_k†`. It is
//! exact (no trajectory sampling error) but memory-hungry, so it is intended
//! for the small registers used in the paper's hardware experiments
//! (5 qubits for the Iris / 4-dimensional MNIST circuits). Larger noisy
//! registers should use trajectory sampling on [`StateVector`].

use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use crate::linalg::CMatrix;
use crate::noise::{NoiseChannel, NoiseModel};
use crate::state::StateVector;

/// A mixed quantum state on `n` qubits stored as a dense density matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    /// Row-major `dim × dim` matrix.
    data: Vec<Complex>,
    dim: usize,
}

impl DensityMatrix {
    /// Maximum register width the density engine will allocate (2^12 × 2^12
    /// complex numbers ≈ 256 MiB).
    pub const MAX_QUBITS: usize = 12;

    /// Creates the pure state |0…0⟩⟨0…0|.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            (1..=Self::MAX_QUBITS).contains(&num_qubits),
            "density matrix register width {num_qubits} unsupported (max {})",
            Self::MAX_QUBITS
        );
        let dim = 1 << num_qubits;
        let mut data = vec![Complex::ZERO; dim * dim];
        data[0] = Complex::ONE;
        DensityMatrix {
            num_qubits,
            data,
            dim,
        }
    }

    /// Creates a density matrix from a pure state: ρ = |ψ⟩⟨ψ|.
    pub fn from_pure(state: &StateVector) -> Self {
        let num_qubits = state.num_qubits();
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "density matrix register width {num_qubits} unsupported (max {})",
            Self::MAX_QUBITS
        );
        let dim = state.dim();
        let amps = state.to_amplitudes();
        let mut data = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix {
            num_qubits,
            data,
            dim,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert-space dimension (2^n).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The matrix element ρ[r, c].
    pub fn element(&self, r: usize, c: usize) -> Complex {
        self.data[r * self.dim + c]
    }

    /// Trace of the density matrix (should be ≈ 1).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i].re).sum()
    }

    /// Purity Tr(ρ²); 1 for pure states, 1/2^n for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr} = Σ_{r,c} |ρ_{rc}|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Fidelity ⟨ψ|ρ|ψ⟩ against a pure state.
    pub fn fidelity_with_pure(&self, state: &StateVector) -> Result<f64, SimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: state.num_qubits(),
            });
        }
        let amps = state.to_amplitudes();
        let mut acc = Complex::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += amps[r].conj() * self.data[r * self.dim + c] * amps[c];
            }
        }
        Ok(acc.re.max(0.0))
    }

    fn check_qubits(&self, qubits: &[usize]) -> Result<(), SimError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        for i in 0..qubits.len() {
            for j in (i + 1)..qubits.len() {
                if qubits[i] == qubits[j] {
                    return Err(SimError::DuplicateQubit(qubits[i]));
                }
            }
        }
        Ok(())
    }

    /// Applies `m` (acting on `qubits`) to the row index: data ← (M ⊗ I) · data.
    fn apply_matrix_left(&mut self, qubits: &[usize], m: &CMatrix) {
        let k = qubits.len();
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let full_mask: usize = masks.iter().sum();
        let dim = self.dim;
        let sub_dim = 1usize << k;
        let mut scratch = vec![Complex::ZERO; sub_dim];
        for col in 0..dim {
            for base in 0..dim {
                if base & full_mask != 0 {
                    continue;
                }
                for (sub, slot) in scratch.iter_mut().enumerate() {
                    let mut idx = base;
                    for (bit, mask) in masks.iter().enumerate() {
                        if sub & (1 << bit) != 0 {
                            idx |= mask;
                        }
                    }
                    *slot = self.data[idx * dim + col];
                }
                for row in 0..sub_dim {
                    let mut idx = base;
                    for (bit, mask) in masks.iter().enumerate() {
                        if row & (1 << bit) != 0 {
                            idx |= mask;
                        }
                    }
                    let mut acc = Complex::ZERO;
                    for (c, &amp) in scratch.iter().enumerate() {
                        acc += m[(row, c)] * amp;
                    }
                    self.data[idx * dim + col] = acc;
                }
            }
        }
    }

    /// Applies `m†` to the column index: data ← data · (M ⊗ I)†.
    fn apply_matrix_right_dagger(&mut self, qubits: &[usize], m: &CMatrix) {
        let k = qubits.len();
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let full_mask: usize = masks.iter().sum();
        let dim = self.dim;
        let sub_dim = 1usize << k;
        let mut scratch = vec![Complex::ZERO; sub_dim];
        for row in 0..dim {
            for base in 0..dim {
                if base & full_mask != 0 {
                    continue;
                }
                for (sub, slot) in scratch.iter_mut().enumerate() {
                    let mut idx = base;
                    for (bit, mask) in masks.iter().enumerate() {
                        if sub & (1 << bit) != 0 {
                            idx |= mask;
                        }
                    }
                    *slot = self.data[row * dim + idx];
                }
                for col in 0..sub_dim {
                    let mut idx = base;
                    for (bit, mask) in masks.iter().enumerate() {
                        if col & (1 << bit) != 0 {
                            idx |= mask;
                        }
                    }
                    // (ρ M†)_{row, idx} = Σ_c ρ_{row, c} conj(M_{idx_sub, c_sub})
                    let mut acc = Complex::ZERO;
                    for (c, &amp) in scratch.iter().enumerate() {
                        acc += amp * m[(col, c)].conj();
                    }
                    self.data[row * dim + idx] = acc;
                }
            }
        }
    }

    /// Applies a unitary gate: ρ → U ρ U†.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        let qubits = gate.qubits();
        self.check_qubits(&qubits)?;
        let m = gate.matrix();
        self.apply_matrix_left(&qubits, &m);
        self.apply_matrix_right_dagger(&qubits, &m);
        Ok(())
    }

    /// Applies a sequence of gates.
    pub fn apply_gates(&mut self, gates: &[Gate]) -> Result<(), SimError> {
        for g in gates {
            self.apply_gate(g)?;
        }
        Ok(())
    }

    /// Applies a single-qubit Kraus channel exactly: ρ → Σ_k K_k ρ K_k†.
    pub fn apply_channel(&mut self, qubit: usize, channel: &NoiseChannel) -> Result<(), SimError> {
        channel.validate()?;
        self.check_qubits(&[qubit])?;
        let kraus = channel.kraus_operators();
        let original = self.clone();
        for z in &mut self.data {
            *z = Complex::ZERO;
        }
        for k in &kraus {
            let mut branch = original.clone();
            branch.apply_matrix_left(&[qubit], k);
            branch.apply_matrix_right_dagger(&[qubit], k);
            for (dst, src) in self.data.iter_mut().zip(branch.data.iter()) {
                *dst += *src;
            }
        }
        Ok(())
    }

    /// Runs a concrete gate list under a noise model: after each gate, the
    /// model's channels are applied exactly.
    pub fn apply_gates_with_noise(
        &mut self,
        gates: &[Gate],
        noise: &NoiseModel,
    ) -> Result<(), SimError> {
        for g in gates {
            self.apply_gate(g)?;
            for (q, c) in noise.channels_for_gate(g) {
                self.apply_channel(q, &c)?;
            }
        }
        Ok(())
    }

    /// Probability of measuring qubit `q` in state |1⟩.
    pub fn probability_of_one(&self, q: usize) -> Result<f64, SimError> {
        self.check_qubits(&[q])?;
        let bit = 1usize << q;
        let mut p = 0.0;
        for i in 0..self.dim {
            if i & bit != 0 {
                p += self.data[i * self.dim + i].re;
            }
        }
        Ok(p.clamp(0.0, 1.0))
    }

    /// Diagonal of the density matrix: the basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re.max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn zero_state_is_pure_with_unit_trace() {
        let rho = DensityMatrix::zero_state(2);
        assert!((rho.trace() - 1.0).abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
    }

    #[test]
    fn from_pure_matches_statevector_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gates(&[
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ])
        .unwrap();
        let rho = DensityMatrix::from_pure(&sv);
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
    }

    #[test]
    fn gate_application_matches_statevector_engine() {
        let gates = vec![
            Gate::H(0),
            Gate::Ry(1, 0.7),
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::CRz {
                control: 1,
                target: 2,
                theta: 0.4,
            },
            Gate::CSwap {
                control: 0,
                a: 1,
                b: 2,
            },
        ];
        let mut sv = StateVector::zero_state(3);
        sv.apply_gates(&gates).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_gates(&gates).unwrap();
        for q in 0..3 {
            assert!(
                (sv.probability_of_one(q).unwrap() - rho.probability_of_one(q).unwrap()).abs()
                    < 1e-9
            );
        }
        assert!((rho.fidelity_with_pure(&sv).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_preserved_under_gates_and_channels() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0)).unwrap();
        rho.apply_channel(0, &NoiseChannel::Depolarizing(0.2))
            .unwrap();
        rho.apply_channel(1, &NoiseChannel::AmplitudeDamping(0.3))
            .unwrap();
        rho.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::H(0)).unwrap();
        let before = rho.purity();
        rho.apply_channel(0, &NoiseChannel::Depolarizing(0.3))
            .unwrap();
        assert!(rho.purity() < before);
    }

    #[test]
    fn full_depolarizing_yields_maximally_mixed() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(0, &NoiseChannel::Depolarizing(0.75))
            .unwrap();
        // p = 0.75 with equal Pauli mixing sends any state to I/2.
        assert!((rho.element(0, 0).re - 0.5).abs() < 1e-9);
        assert!((rho.element(1, 1).re - 0.5).abs() < 1e-9);
        assert!((rho.purity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_moves_population_down() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&Gate::X(0)).unwrap();
        rho.apply_channel(0, &NoiseChannel::AmplitudeDamping(0.25))
            .unwrap();
        assert!((rho.probability_of_one(0).unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn noisy_gate_sequence_runs() {
        let noise = NoiseModel::depolarizing(0.01, 0.05, 0.0).unwrap();
        let gates = vec![
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ];
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gates_with_noise(&gates, &noise).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-9);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn dimension_checks() {
        let rho = DensityMatrix::zero_state(2);
        let sv = StateVector::zero_state(3);
        assert!(rho.fidelity_with_pure(&sv).is_err());
        let mut rho = DensityMatrix::zero_state(2);
        assert!(rho.apply_gate(&Gate::H(5)).is_err());
        assert!(rho.probability_of_one(7).is_err());
    }
}
