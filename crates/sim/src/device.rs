//! Quantum device models.
//!
//! The paper evaluates QuClassi on several IBM-Q superconducting machines
//! (London, New York, Melbourne, Rome, Cairo) and on IonQ's trapped-ion
//! processor. Those machines differ in two ways that matter for the results:
//!
//! 1. **Connectivity** — superconducting devices have sparse coupling maps,
//!    so CSWAP-heavy circuits need routing SWAPs (the paper counts 21 extra
//!    CNOTs on IBM-Q Cairo for the (3,6) task), whereas the trapped-ion
//!    device is all-to-all.
//! 2. **Gate fidelity** — per-gate and readout error rates differ.
//!
//! [`DeviceModel`] captures both, pairing a [`CouplingMap`] with a
//! [`NoiseModel`]. The concrete numbers are calibration-era public values
//! (order of magnitude), chosen so the relative behaviour in Figs. 11–12 and
//! the IonQ vs IBM-Cairo comparison reproduce.

use crate::error::SimError;
use crate::noise::NoiseModel;
use std::collections::VecDeque;

/// An undirected qubit-connectivity graph.
#[derive(Clone, Debug, PartialEq)]
pub struct CouplingMap {
    num_qubits: usize,
    /// Adjacency list (symmetric).
    adjacency: Vec<Vec<usize>>,
    all_to_all: bool,
}

impl CouplingMap {
    /// A fully connected device (every pair of qubits can interact).
    pub fn all_to_all(num_qubits: usize) -> Self {
        let adjacency = (0..num_qubits)
            .map(|q| (0..num_qubits).filter(|&p| p != q).collect())
            .collect();
        CouplingMap {
            num_qubits,
            adjacency,
            all_to_all: true,
        }
    }

    /// A linear chain 0–1–2–…–(n-1).
    pub fn linear(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..num_qubits.saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        CouplingMap::from_edges(num_qubits, &edges)
    }

    /// Builds a coupling map from an explicit undirected edge list.
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edge ({a},{b})");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        CouplingMap {
            num_qubits,
            adjacency,
            all_to_all: false,
        }
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Whether every pair of qubits is connected.
    pub fn is_all_to_all(&self) -> bool {
        self.all_to_all
    }

    /// Whether two qubits can directly interact.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        a != b && self.adjacency.get(a).is_some_and(|n| n.contains(&b))
    }

    /// Neighbours of a qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Shortest path between two qubits (inclusive of endpoints), found by
    /// breadth-first search.
    pub fn shortest_path(&self, from: usize, to: usize) -> Result<Vec<usize>, SimError> {
        if from >= self.num_qubits || to >= self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: from.max(to),
                num_qubits: self.num_qubits,
            });
        }
        if from == to {
            return Ok(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        Err(SimError::Routing(format!(
            "no path between physical qubits {from} and {to}"
        )))
    }

    /// Graph distance (number of edges) between two qubits.
    pub fn distance(&self, from: usize, to: usize) -> Result<usize, SimError> {
        Ok(self.shortest_path(from, to)?.len().saturating_sub(1))
    }
}

/// A complete device model: name, connectivity and noise.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Human-readable device name (e.g. `ibmq_london`).
    pub name: String,
    /// Connectivity constraints.
    pub coupling: CouplingMap,
    /// Gate and readout noise.
    pub noise: NoiseModel,
}

impl DeviceModel {
    /// An ideal simulator: all-to-all connectivity, no noise.
    pub fn ideal_simulator(num_qubits: usize) -> Self {
        DeviceModel {
            name: "simulator".to_string(),
            coupling: CouplingMap::all_to_all(num_qubits),
            noise: NoiseModel::ideal(),
        }
    }

    /// IBM-Q London: 5 qubits in a T shape (0-1, 1-2, 1-3, 3-4).
    pub fn ibmq_london() -> Self {
        DeviceModel {
            name: "ibmq_london".to_string(),
            coupling: CouplingMap::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
            noise: NoiseModel::depolarizing(0.0006, 0.012, 0.02)
                .expect("static london noise parameters are valid"),
        }
    }

    /// IBM-Q New York (modelled as a 5-qubit T-shaped device with slightly
    /// higher two-qubit error than London).
    pub fn ibmq_new_york() -> Self {
        DeviceModel {
            name: "ibmq_new_york".to_string(),
            coupling: CouplingMap::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
            noise: NoiseModel::depolarizing(0.0009, 0.016, 0.025)
                .expect("static new-york noise parameters are valid"),
        }
    }

    /// IBM-Q Melbourne: 15-qubit ladder, noisier older device.
    pub fn ibmq_melbourne() -> Self {
        let mut edges = Vec::new();
        // Two rows of 7/8 qubits with rungs (simplified Melbourne ladder).
        for i in 0..6 {
            edges.push((i, i + 1));
        }
        for i in 7..14 {
            edges.push((i, i + 1));
        }
        for i in 0..7 {
            edges.push((i, 14 - i));
        }
        DeviceModel {
            name: "ibmq_melbourne".to_string(),
            coupling: CouplingMap::from_edges(15, &edges),
            noise: NoiseModel::depolarizing(0.0012, 0.025, 0.04)
                .expect("static melbourne noise parameters are valid"),
        }
    }

    /// IBM-Q Rome: 5-qubit linear chain.
    pub fn ibmq_rome() -> Self {
        DeviceModel {
            name: "ibmq_rome".to_string(),
            coupling: CouplingMap::linear(5),
            noise: NoiseModel::depolarizing(0.0005, 0.011, 0.018)
                .expect("static rome noise parameters are valid"),
        }
    }

    /// IBM-Q Cairo: 27-qubit heavy-hex lattice (Falcon r5.11 layout).
    pub fn ibmq_cairo() -> Self {
        // Heavy-hex edge list for the 27-qubit Falcon processors.
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        DeviceModel {
            name: "ibmq_cairo".to_string(),
            coupling: CouplingMap::from_edges(27, &edges),
            noise: NoiseModel::depolarizing(0.0004, 0.010, 0.015)
                .expect("static cairo noise parameters are valid"),
        }
    }

    /// IonQ trapped-ion device: 11 qubits, all-to-all connectivity, lower
    /// two-qubit error, slower but that does not matter here.
    pub fn ionq() -> Self {
        DeviceModel {
            name: "ionq".to_string(),
            coupling: CouplingMap::all_to_all(11),
            noise: NoiseModel::depolarizing(0.0003, 0.006, 0.01)
                .expect("static ionq noise parameters are valid"),
        }
    }

    /// All predefined hardware models (excluding the ideal simulator).
    pub fn catalog() -> Vec<DeviceModel> {
        vec![
            DeviceModel::ibmq_london(),
            DeviceModel::ibmq_new_york(),
            DeviceModel::ibmq_melbourne(),
            DeviceModel::ibmq_rome(),
            DeviceModel::ibmq_cairo(),
            DeviceModel::ionq(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_adjacency() {
        let c = CouplingMap::all_to_all(4);
        assert!(c.is_all_to_all());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(c.are_adjacent(a, b), a != b);
            }
        }
    }

    #[test]
    fn linear_chain_adjacency_and_distance() {
        let c = CouplingMap::linear(5);
        assert!(c.are_adjacent(0, 1));
        assert!(!c.are_adjacent(0, 2));
        assert_eq!(c.distance(0, 4).unwrap(), 4);
        assert_eq!(c.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(c.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn disconnected_graph_reports_routing_error() {
        let c = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(c.shortest_path(0, 3), Err(SimError::Routing(_))));
    }

    #[test]
    fn out_of_range_path_is_error() {
        let c = CouplingMap::linear(3);
        assert!(c.shortest_path(0, 5).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_out_of_range_panics() {
        let _ = CouplingMap::from_edges(2, &[(0, 3)]);
    }

    #[test]
    fn t_shaped_london_topology() {
        let d = DeviceModel::ibmq_london();
        assert!(d.coupling.are_adjacent(1, 3));
        assert!(!d.coupling.are_adjacent(0, 4));
        assert_eq!(d.coupling.distance(0, 4).unwrap(), 3);
    }

    #[test]
    fn ionq_is_all_to_all_and_lower_error() {
        let ionq = DeviceModel::ionq();
        let cairo = DeviceModel::ibmq_cairo();
        assert!(ionq.coupling.is_all_to_all());
        assert!(!cairo.coupling.is_all_to_all());
        // IonQ's two-qubit error is strictly lower than Cairo's.
        let ionq_p2 = ionq.noise.two_qubit[0].parameter();
        let cairo_p2 = cairo.noise.two_qubit[0].parameter();
        assert!(ionq_p2 < cairo_p2);
    }

    #[test]
    fn cairo_is_connected() {
        let d = DeviceModel::ibmq_cairo();
        for q in 1..27 {
            assert!(
                d.coupling.shortest_path(0, q).is_ok(),
                "qubit {q} unreachable"
            );
        }
    }

    #[test]
    fn melbourne_is_connected() {
        let d = DeviceModel::ibmq_melbourne();
        for q in 1..15 {
            assert!(
                d.coupling.shortest_path(0, q).is_ok(),
                "qubit {q} unreachable"
            );
        }
    }

    #[test]
    fn catalog_contains_six_devices_with_unique_names() {
        let cat = DeviceModel::catalog();
        assert_eq!(cat.len(), 6);
        let mut names: Vec<&str> = cat.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn ideal_simulator_is_noiseless() {
        let d = DeviceModel::ideal_simulator(8);
        assert!(d.noise.is_ideal());
        assert_eq!(d.coupling.num_qubits(), 8);
    }
}
