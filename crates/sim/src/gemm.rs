//! GEMM-shaped batched fidelity: many pure states packed into one dense
//! structure-of-arrays matrix, with fidelities against a probe state (or
//! against a whole second matrix) computed as rows of a cache-blocked
//! complex matrix product.
//!
//! Batched analytic inference evaluates `|⟨class_c | sample_s⟩|²` for every
//! (sample, class) pair — exactly a dense GEMM between the encoded-state
//! matrix (samples × 2^n) and the conjugate-transposed class-state matrix
//! (2^n × classes), followed by an elementwise squared modulus. Packing the
//! class states once into a [`StateMatrix`] replaces `N × C` pointer-chasing
//! scatter reads over individually allocated statevectors with streaming
//! sweeps over two contiguous `f64` planes: the class matrix stays cache
//! resident across samples and each row product autovectorises like the
//! kernels in [`crate::state`].
//!
//! ## Determinism and tolerance
//!
//! Every row·column reduction reuses the **fixed pairwise tree** of
//! [`crate::state::StateVector::inner_product`]: leaf folds of
//! [`crate::state::REDUCTION_CHUNK`] amplitudes (the cache block — this is
//! what "cache-blocked" means here; no other blocking reassociates the
//! sum) combined by balanced halving. The tree shape depends only on the
//! register size, so:
//!
//! * [`StateMatrix::fidelities_into`] is **bit-identical** to calling
//!   [`crate::state::StateVector::fidelity`] row by row, and
//! * [`StateMatrix::fidelities_into_with`] is bit-identical to the
//!   sequential path for **any** intra thread count (only leaf ownership
//!   moves between threads, never the combine order).
//!
//! The documented contract for consumers is agreement within `1e-12` of
//! the sequential inner-product path — today the implementation delivers
//! exact bit equality, and the `gemm_equivalence` suite pins both the
//! tolerance ceiling and the current bit-identity so any future blocking
//! scheme that genuinely reassociates must stay inside `1e-12`.

use crate::complex::Complex;
use crate::error::SimError;
use crate::intra::IntraThreads;
use crate::state::{
    combine_complex, inner_product_leaf, inner_product_tree, StateVector, REDUCTION_CHUNK,
};

/// A dense row-major pack of same-width pure states: row `r` holds the
/// amplitudes of state `r`, split into structure-of-arrays real and
/// imaginary planes.
#[derive(Clone, Debug, PartialEq)]
pub struct StateMatrix {
    num_qubits: usize,
    dim: usize,
    rows: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateMatrix {
    /// Packs `states` (all on the same register width) into one contiguous
    /// matrix.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidState`] for an empty list and
    /// [`SimError::DimensionMismatch`] when the register widths differ.
    pub fn pack(states: &[StateVector]) -> Result<Self, SimError> {
        let first = states
            .first()
            .ok_or_else(|| SimError::InvalidState("cannot pack an empty state list".to_string()))?;
        let num_qubits = first.num_qubits();
        let dim = first.dim();
        let mut re = Vec::with_capacity(states.len() * dim);
        let mut im = Vec::with_capacity(states.len() * dim);
        for state in states {
            if state.num_qubits() != num_qubits {
                return Err(SimError::DimensionMismatch {
                    expected: num_qubits,
                    found: state.num_qubits(),
                });
            }
            re.extend_from_slice(state.re_parts());
            im.extend_from_slice(state.im_parts());
        }
        Ok(StateMatrix {
            num_qubits,
            dim,
            rows: states.len(),
            re,
            im,
        })
    }

    /// Register width (qubits) of every packed state.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitudes per row (2^n).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of packed states.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The SoA halves of row `r`.
    fn row(&self, r: usize) -> (&[f64], &[f64]) {
        let lo = r * self.dim;
        let hi = lo + self.dim;
        (&self.re[lo..hi], &self.im[lo..hi])
    }

    fn check_probe(&self, other: &StateVector, out: &[f64]) -> Result<(), SimError> {
        if other.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: other.num_qubits(),
            });
        }
        if out.len() != self.rows {
            return Err(SimError::InvalidState(format!(
                "fidelity output length {} does not match {} packed states",
                out.len(),
                self.rows
            )));
        }
        Ok(())
    }

    /// Writes `|⟨row_r|other⟩|²` for every packed row into `out`
    /// (allocation-free: one streaming pass over the matrix planes, the
    /// probe state cache resident throughout). Bit-identical to calling
    /// [`StateVector::fidelity`] per row.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on register-width mismatch
    /// and [`SimError::InvalidState`] when `out.len() != self.rows()`.
    pub fn fidelities_into(&self, other: &StateVector, out: &mut [f64]) -> Result<(), SimError> {
        self.check_probe(other, out)?;
        let (b_re, b_im) = (other.re_parts(), other.im_parts());
        for (r, slot) in out.iter_mut().enumerate() {
            let (a_re, a_im) = self.row(r);
            *slot = inner_product_tree(a_re, a_im, b_re, b_im).norm_sqr();
        }
        Ok(())
    }

    /// [`StateMatrix::fidelities_into`] with the reduction-tree leaves of
    /// every row fanned out over an intra-circuit thread budget.
    /// Bit-identical to the sequential path for any thread count: the
    /// (row, leaf) work list and the per-row combine order are pure
    /// functions of the matrix shape.
    ///
    /// # Errors
    /// Same contract as [`StateMatrix::fidelities_into`].
    pub fn fidelities_into_with(
        &self,
        other: &StateVector,
        intra: &IntraThreads,
        out: &mut [f64],
    ) -> Result<(), SimError> {
        if !intra.parallelizes(self.num_qubits) || self.dim <= REDUCTION_CHUNK {
            return self.fidelities_into(other, out);
        }
        self.check_probe(other, out)?;
        let (b_re, b_im) = (other.re_parts(), other.im_parts());
        let leaves = self.dim / REDUCTION_CHUNK;
        let jobs: Vec<(usize, usize)> = (0..self.rows)
            .flat_map(|r| (0..leaves).map(move |l| (r, l)))
            .collect();
        let partials = intra.pool().scoped_map(jobs, |_, (r, leaf)| {
            let (a_re, a_im) = self.row(r);
            let lo = leaf * REDUCTION_CHUNK;
            let hi = lo + REDUCTION_CHUNK;
            inner_product_leaf(&a_re[lo..hi], &a_im[lo..hi], &b_re[lo..hi], &b_im[lo..hi])
        });
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = combine_complex(&partials[r * leaves..(r + 1) * leaves]).norm_sqr();
        }
        Ok(())
    }

    /// The full samples × classes fidelity GEMM: writes
    /// `|⟨classes_c|samples_s⟩|²` into `out[s * classes.rows() + c]`,
    /// row-major over samples. Each entry goes through the same fixed
    /// pairwise reduction as [`StateMatrix::fidelities_into`], so the
    /// result is bit-identical to the per-pair sequential path; the class
    /// plane streams once per sample row while the sample row stays cache
    /// resident.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] on register-width mismatch
    /// and [`SimError::InvalidState`] when
    /// `out.len() != self.rows() * classes.rows()`.
    pub fn fidelity_matrix_into(
        &self,
        classes: &StateMatrix,
        out: &mut [f64],
    ) -> Result<(), SimError> {
        if classes.num_qubits != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: classes.num_qubits,
            });
        }
        if out.len() != self.rows * classes.rows {
            return Err(SimError::InvalidState(format!(
                "fidelity matrix output length {} does not match {} samples × {} classes",
                out.len(),
                self.rows,
                classes.rows
            )));
        }
        for (s, row_out) in out.chunks_exact_mut(classes.rows).enumerate() {
            let (s_re, s_im) = self.row(s);
            for (c, slot) in row_out.iter_mut().enumerate() {
                let (c_re, c_im) = classes.row(c);
                *slot = inner_product_tree(c_re, c_im, s_re, s_im).norm_sqr();
            }
        }
        Ok(())
    }
}

/// Inner product ⟨a|b⟩ between two packed rows is what
/// [`StateMatrix::fidelities_into`] squares; exposed for consumers that
/// need the complex value itself (e.g. interference diagnostics).
pub fn row_inner_product(
    matrix: &StateMatrix,
    r: usize,
    other: &StateVector,
) -> Result<Complex, SimError> {
    if other.num_qubits() != matrix.num_qubits {
        return Err(SimError::DimensionMismatch {
            expected: matrix.num_qubits,
            found: other.num_qubits(),
        });
    }
    if r >= matrix.rows {
        return Err(SimError::InvalidState(format!(
            "row {r} out of range for {} packed states",
            matrix.rows
        )));
    }
    let (a_re, a_im) = matrix.row(r);
    Ok(inner_product_tree(
        a_re,
        a_im,
        other.re_parts(),
        other.im_parts(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn random_ish_state(n: usize, seed: usize) -> StateVector {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
            c.ry(q, 0.3 + 0.17 * (q + seed) as f64);
            c.rz(q, -0.4 + 0.23 * (q * seed + 1) as f64);
        }
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
        }
        c.execute(&[]).unwrap()
    }

    #[test]
    fn pack_rejects_empty_and_mismatched() {
        assert!(matches!(
            StateMatrix::pack(&[]),
            Err(SimError::InvalidState(_))
        ));
        let a = StateVector::zero_state(3);
        let b = StateVector::zero_state(4);
        assert!(matches!(
            StateMatrix::pack(&[a, b]),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fidelities_match_per_pair_path_bit_for_bit() {
        let states: Vec<StateVector> = (1..5).map(|s| random_ish_state(5, s)).collect();
        let probe = random_ish_state(5, 9);
        let matrix = StateMatrix::pack(&states).unwrap();
        assert_eq!(matrix.rows(), 4);
        assert_eq!(matrix.dim(), 32);
        let mut out = vec![0.0; 4];
        matrix.fidelities_into(&probe, &mut out).unwrap();
        for (state, &f) in states.iter().zip(out.iter()) {
            assert_eq!(f.to_bits(), state.fidelity(&probe).unwrap().to_bits());
        }
    }

    #[test]
    fn fidelity_matrix_matches_row_products() {
        let samples: Vec<StateVector> = (1..4).map(|s| random_ish_state(4, s)).collect();
        let classes: Vec<StateVector> = (5..7).map(|s| random_ish_state(4, s)).collect();
        let sm = StateMatrix::pack(&samples).unwrap();
        let cm = StateMatrix::pack(&classes).unwrap();
        let mut out = vec![0.0; 3 * 2];
        sm.fidelity_matrix_into(&cm, &mut out).unwrap();
        for (s, sample) in samples.iter().enumerate() {
            for (c, class) in classes.iter().enumerate() {
                assert_eq!(
                    out[s * 2 + c].to_bits(),
                    class.fidelity(sample).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn shape_errors_are_rejected() {
        let matrix = StateMatrix::pack(&[StateVector::zero_state(3)]).unwrap();
        let probe4 = StateVector::zero_state(4);
        let mut out1 = vec![0.0; 1];
        assert!(matrix.fidelities_into(&probe4, &mut out1).is_err());
        let probe3 = StateVector::zero_state(3);
        let mut out2 = vec![0.0; 2];
        assert!(matrix.fidelities_into(&probe3, &mut out2).is_err());
        assert!(row_inner_product(&matrix, 1, &probe3).is_err());
        assert!(row_inner_product(&matrix, 0, &probe4).is_err());
        let ip = row_inner_product(&matrix, 0, &probe3).unwrap();
        assert_eq!(ip, Complex::ONE);
        let other = StateMatrix::pack(&[probe4]).unwrap();
        let mut out3 = vec![0.0; 1];
        assert!(matrix.fidelity_matrix_into(&other, &mut out3).is_err());
    }
}
