//! Parameterised quantum circuits.
//!
//! A [`Circuit`] is an ordered list of operations on a fixed-width register.
//! Operations are either fully-specified [`Gate`]s or *parametric* gates whose
//! rotation angle is looked up in a parameter vector at bind time. This is the
//! representation QuClassi trains: the learned state is a parametric circuit,
//! the data-encoding prefix is a fixed circuit, and the parameter-shift rule
//! repeatedly re-binds the same circuit with nudged parameter values.

use crate::error::SimError;
use crate::gate::Gate;
use crate::state::StateVector;

/// One entry in a circuit: either a concrete gate or a gate whose angle is a
/// symbolic parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A fully specified gate.
    Fixed(Gate),
    /// A gate whose rotation angle is `scale * params[index] + offset`.
    Parametric {
        /// The gate template (its stored angle is ignored).
        template: Gate,
        /// Index into the parameter vector.
        index: usize,
        /// Multiplicative factor applied to the bound value.
        scale: f64,
        /// Additive offset applied after scaling.
        offset: f64,
    },
}

impl Operation {
    /// The qubits touched by this operation.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Fixed(g) => g.qubits(),
            Operation::Parametric { template, .. } => template.qubits(),
        }
    }

    /// Resolves the operation to a concrete gate given a parameter vector.
    pub fn bind(&self, params: &[f64]) -> Result<Gate, SimError> {
        match self {
            Operation::Fixed(g) => Ok(g.clone()),
            Operation::Parametric {
                template,
                index,
                scale,
                offset,
            } => {
                let value = params.get(*index).ok_or(SimError::UnboundParameter {
                    index: *index,
                    provided: params.len(),
                })?;
                Ok(template.with_angle(scale * value + offset))
            }
        }
    }
}

/// An ordered sequence of operations on `num_qubits` qubits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The operations in program order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations (fixed + parametric).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of symbolic parameters referenced (max index + 1).
    pub fn num_parameters(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Operation::Parametric { index, .. } => Some(index + 1),
                Operation::Fixed(_) => None,
            })
            .max()
            .unwrap_or(0)
    }

    fn validate_gate(&self, gate: &Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {} uses qubit {} but the circuit has {} qubits",
                gate.name(),
                q,
                self.num_qubits
            );
        }
    }

    /// Appends a concrete gate.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.validate_gate(&gate);
        self.ops.push(Operation::Fixed(gate));
        self
    }

    /// Appends a parametric gate whose angle is `params[index]`.
    pub fn push_parametric(&mut self, template: Gate, index: usize) -> &mut Self {
        self.push_parametric_affine(template, index, 1.0, 0.0)
    }

    /// Appends a parametric gate whose angle is `scale * params[index] + offset`.
    pub fn push_parametric_affine(
        &mut self,
        template: Gate,
        index: usize,
        scale: f64,
        offset: f64,
    ) -> &mut Self {
        self.validate_gate(&template);
        assert!(
            template.angle().is_some(),
            "gate {} takes no angle and cannot be parametric",
            template.name()
        );
        self.ops.push(Operation::Parametric {
            template,
            index,
            scale,
            offset,
        });
        self
    }

    /// Appends all operations of another circuit (register widths must match).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits, other.num_qubits
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    // Convenience builders -------------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Fixed-angle RY.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }

    /// Fixed-angle RZ.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }

    /// Fixed-angle RX.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }

    /// Parametric RY reading `params[index]`.
    pub fn ry_param(&mut self, q: usize, index: usize) -> &mut Self {
        self.push_parametric(Gate::Ry(q, 0.0), index)
    }

    /// Parametric RZ reading `params[index]`.
    pub fn rz_param(&mut self, q: usize, index: usize) -> &mut Self {
        self.push_parametric(Gate::Rz(q, 0.0), index)
    }

    /// CNOT gate.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Controlled-SWAP gate.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) -> &mut Self {
        self.push(Gate::CSwap { control, a, b })
    }

    /// Parametric controlled-RY reading `params[index]`.
    pub fn cry_param(&mut self, control: usize, target: usize, index: usize) -> &mut Self {
        self.push_parametric(
            Gate::CRy {
                control,
                target,
                theta: 0.0,
            },
            index,
        )
    }

    /// Parametric controlled-RZ reading `params[index]`.
    pub fn crz_param(&mut self, control: usize, target: usize, index: usize) -> &mut Self {
        self.push_parametric(
            Gate::CRz {
                control,
                target,
                theta: 0.0,
            },
            index,
        )
    }

    // Binding and execution -------------------------------------------------

    /// Resolves every operation to a concrete gate.
    pub fn bind(&self, params: &[f64]) -> Result<Vec<Gate>, SimError> {
        self.ops.iter().map(|op| op.bind(params)).collect()
    }

    /// Runs the circuit on |0…0⟩ with the given parameters and returns the
    /// final state.
    pub fn execute(&self, params: &[f64]) -> Result<StateVector, SimError> {
        let mut sv = StateVector::zero_state(self.num_qubits);
        self.execute_into(&mut sv, params)?;
        Ok(sv)
    }

    /// [`Circuit::execute`] under an intra-circuit thread budget: above
    /// the budget's qubit threshold every gate sweep is split into
    /// disjoint amplitude chunks over the scoped pool. The parallel
    /// kernels reproduce the sequential per-amplitude arithmetic exactly,
    /// so the result is bit-identical to [`Circuit::execute`] for any
    /// thread count.
    pub fn execute_with(
        &self,
        params: &[f64],
        intra: &crate::intra::IntraThreads,
    ) -> Result<StateVector, SimError> {
        let mut sv = StateVector::zero_state(self.num_qubits);
        for op in &self.ops {
            let gate = op.bind(params)?;
            sv.apply_gate_intra(&gate, intra)?;
        }
        Ok(sv)
    }

    /// Applies the circuit to an existing state in place.
    pub fn execute_into(&self, state: &mut StateVector, params: &[f64]) -> Result<(), SimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                expected: self.num_qubits,
                found: state.num_qubits(),
            });
        }
        for op in &self.ops {
            let gate = op.bind(params)?;
            state.apply_gate(&gate)?;
        }
        Ok(())
    }

    // Introspection ----------------------------------------------------------

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of operations acting on two or more qubits.
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.qubits().len() >= 2).count()
    }

    /// Circuit depth: the length of the longest chain of operations that
    /// share qubits (greedy as-soon-as-possible scheduling).
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.num_qubits];
        let mut max_depth = 0;
        for op in &self.ops {
            let qs = op.qubits();
            let layer = qs.iter().map(|&q| qubit_depth[q]).max().unwrap_or(0) + 1;
            for q in qs {
                qubit_depth[q] = layer;
            }
            max_depth = max_depth.max(layer);
        }
        max_depth
    }

    /// A compact one-line-per-operation textual rendering of the circuit,
    /// in the style of an OpenQASM body. Parametric angles are shown as
    /// `θ[i]`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                Operation::Fixed(g) => {
                    let qs: Vec<String> = g.qubits().iter().map(|q| format!("q[{q}]")).collect();
                    match g.angle() {
                        Some(a) => {
                            out.push_str(&format!("{}({:.6}) {};\n", g.name(), a, qs.join(", ")))
                        }
                        None => out.push_str(&format!("{} {};\n", g.name(), qs.join(", "))),
                    }
                }
                Operation::Parametric {
                    template,
                    index,
                    scale,
                    offset,
                } => {
                    let qs: Vec<String> = template
                        .qubits()
                        .iter()
                        .map(|q| format!("q[{q}]"))
                        .collect();
                    let expr = if (*scale - 1.0).abs() < f64::EPSILON && offset.abs() < f64::EPSILON
                    {
                        format!("θ[{index}]")
                    } else {
                        format!("{scale:.3}*θ[{index}]+{offset:.3}")
                    };
                    out.push_str(&format!(
                        "{}({}) {};\n",
                        template.name(),
                        expr,
                        qs.join(", ")
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_execute_fixed_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let sv = c.execute(&[]).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn parametric_binding() {
        let mut c = Circuit::new(1);
        c.ry_param(0, 0);
        let sv = c.execute(&[std::f64::consts::PI]).unwrap();
        assert!((sv.probability_of_one(0).unwrap() - 1.0).abs() < 1e-10);
        // Missing parameter is an error.
        assert!(matches!(
            c.execute(&[]),
            Err(SimError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn affine_parameter_scaling() {
        let mut c = Circuit::new(1);
        // angle = 2 * θ[0] + π/2
        c.push_parametric_affine(Gate::Ry(0, 0.0), 0, 2.0, std::f64::consts::FRAC_PI_2);
        let gates = c.bind(&[0.25]).unwrap();
        assert!((gates[0].angle().unwrap() - (0.5 + std::f64::consts::FRAC_PI_2)).abs() < 1e-12);
    }

    #[test]
    fn num_parameters_counts_max_index() {
        let mut c = Circuit::new(3);
        c.ry_param(0, 0).rz_param(1, 4).cry_param(0, 2, 2);
        assert_eq!(c.num_parameters(), 5);
        assert_eq!(Circuit::new(1).num_parameters(), 0);
    }

    #[test]
    #[should_panic(expected = "uses qubit")]
    fn out_of_range_qubit_panics_at_build_time() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic(expected = "takes no angle")]
    fn non_rotational_gate_cannot_be_parametric() {
        let mut c = Circuit::new(2);
        c.push_parametric(Gate::H(0), 0);
    }

    #[test]
    fn depth_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1
        c.cnot(0, 1); // depth 2
        c.cnot(1, 2); // depth 3
        c.rz(0, 0.1); // depth 2 on qubit 0 -> overall 3
        assert_eq!(c.depth(), 3);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.multi_qubit_gate_count(), 2);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_requires_matching_width() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend(&b);
    }

    #[test]
    fn execute_into_checks_width() {
        let c = Circuit::new(2);
        let mut sv = StateVector::zero_state(3);
        assert!(matches!(
            c.execute_into(&mut sv, &[]),
            Err(SimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn text_rendering_mentions_parameters_and_angles() {
        let mut c = Circuit::new(2);
        c.h(0).ry(1, 0.5).ry_param(0, 3);
        let text = c.to_text();
        assert!(text.contains("h q[0];"));
        assert!(text.contains("ry(0.500000) q[1];"));
        assert!(text.contains("θ[3]"));
    }
}
