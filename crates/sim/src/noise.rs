//! Noise channels and device noise models.
//!
//! Two consumption paths are provided:
//!
//! * **Kraus form** — every channel can produce its Kraus operators, which
//!   the density-matrix engine applies exactly (`ρ → Σ_k K_k ρ K_k†`).
//! * **Trajectory form** — for registers too large for a density matrix, the
//!   state-vector engine samples one Kraus branch per channel application
//!   (quantum-trajectory / Monte-Carlo wave-function method).
//!
//! A [`NoiseModel`] bundles per-gate error rates and readout error, which is
//! how the repository models the IBM-Q and IonQ devices used in the paper's
//! Section 5.4.

use crate::complex::Complex;
use crate::error::SimError;
use crate::gate::Gate;
use crate::linalg::CMatrix;
use crate::state::StateVector;
use rand::Rng;

/// A single-qubit noise channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// Depolarizing channel with error probability `p` (X, Y, Z each with p/3).
    Depolarizing(f64),
    /// Bit flip (X) with probability `p`.
    BitFlip(f64),
    /// Phase flip (Z) with probability `p`.
    PhaseFlip(f64),
    /// Amplitude damping with decay probability `gamma`.
    AmplitudeDamping(f64),
    /// Phase damping with probability `lambda`.
    PhaseDamping(f64),
}

impl NoiseChannel {
    /// The error probability / strength parameter of the channel.
    pub fn parameter(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarizing(p)
            | NoiseChannel::BitFlip(p)
            | NoiseChannel::PhaseFlip(p)
            | NoiseChannel::AmplitudeDamping(p)
            | NoiseChannel::PhaseDamping(p) => p,
        }
    }

    /// Validates that the channel parameter is a probability.
    pub fn validate(&self) -> Result<(), SimError> {
        let p = self.parameter();
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(SimError::InvalidProbability(p));
        }
        Ok(())
    }

    /// Kraus operators of the channel (2×2 matrices).
    pub fn kraus_operators(&self) -> Vec<CMatrix> {
        match *self {
            NoiseChannel::Depolarizing(p) => {
                let k0 = CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt()));
                let s = (p / 3.0).sqrt();
                vec![
                    k0,
                    crate::gate::matrices::pauli_x().scale(Complex::from_real(s)),
                    crate::gate::matrices::pauli_y().scale(Complex::from_real(s)),
                    crate::gate::matrices::pauli_z().scale(Complex::from_real(s)),
                ]
            }
            NoiseChannel::BitFlip(p) => vec![
                CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt())),
                crate::gate::matrices::pauli_x().scale(Complex::from_real(p.sqrt())),
            ],
            NoiseChannel::PhaseFlip(p) => vec![
                CMatrix::identity(2).scale(Complex::from_real((1.0 - p).sqrt())),
                crate::gate::matrices::pauli_z().scale(Complex::from_real(p.sqrt())),
            ],
            NoiseChannel::AmplitudeDamping(gamma) => {
                let mut k0 = CMatrix::identity(2);
                k0[(1, 1)] = Complex::from_real((1.0 - gamma).sqrt());
                let mut k1 = CMatrix::zeros(2, 2);
                k1[(0, 1)] = Complex::from_real(gamma.sqrt());
                vec![k0, k1]
            }
            NoiseChannel::PhaseDamping(lambda) => {
                let mut k0 = CMatrix::identity(2);
                k0[(1, 1)] = Complex::from_real((1.0 - lambda).sqrt());
                let mut k1 = CMatrix::zeros(2, 2);
                k1[(1, 1)] = Complex::from_real(lambda.sqrt());
                vec![k0, k1]
            }
        }
    }

    /// Applies the channel to a single qubit of a state vector by sampling
    /// one Kraus branch (quantum-trajectory step).
    pub fn apply_trajectory<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        qubit: usize,
        rng: &mut R,
    ) -> Result<(), SimError> {
        self.validate()?;
        if qubit >= state.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                qubit,
                num_qubits: state.num_qubits(),
            });
        }
        let kraus = self.kraus_operators();
        // Compute branch probabilities p_k = <psi| K_k† K_k |psi> by applying
        // K_k to a copy and taking the squared norm.
        let mut probs = Vec::with_capacity(kraus.len());
        let mut branches = Vec::with_capacity(kraus.len());
        for k in &kraus {
            let mut branch = state.clone();
            branch.apply_single_qubit_matrix(qubit, k);
            let p = branch.norm_sqr();
            probs.push(p);
            branches.push(branch);
        }
        let total: f64 = probs.iter().sum();
        let mut r = rng.gen::<f64>() * total;
        for (p, mut branch) in probs.into_iter().zip(branches) {
            if r < p || p >= total {
                branch.renormalize();
                *state = branch;
                return Ok(());
            }
            r -= p;
        }
        Ok(())
    }
}

/// Readout (measurement assignment) error: probability of flipping the
/// classical outcome after a perfect projective measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReadoutError {
    /// P(report 1 | true 0).
    pub p01: f64,
    /// P(report 0 | true 1).
    pub p10: f64,
}

impl ReadoutError {
    /// Creates a readout error model; both probabilities must lie in [0, 1].
    pub fn new(p01: f64, p10: f64) -> Result<Self, SimError> {
        for p in [p01, p10] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(SimError::InvalidProbability(p));
            }
        }
        Ok(ReadoutError { p01, p10 })
    }

    /// Applies the assignment error to a true probability of measuring |1⟩.
    pub fn corrupt_probability(&self, p1_true: f64) -> f64 {
        (1.0 - p1_true) * self.p01 + p1_true * (1.0 - self.p10)
    }

    /// Flips a sampled classical bit according to the assignment error.
    pub fn corrupt_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        let flip_prob = if bit { self.p10 } else { self.p01 };
        if rng.gen::<f64>() < flip_prob {
            !bit
        } else {
            bit
        }
    }
}

/// A gate-level noise model: error channels attached to every single- and
/// two-qubit gate, plus readout error.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Channel applied to the operand of every single-qubit gate.
    pub single_qubit: Vec<NoiseChannel>,
    /// Channel applied to *each* operand of every multi-qubit gate.
    pub two_qubit: Vec<NoiseChannel>,
    /// Readout error applied at measurement time.
    pub readout: ReadoutError,
}

impl NoiseModel {
    /// An ideal (noise-free) model.
    pub fn ideal() -> Self {
        NoiseModel {
            single_qubit: Vec::new(),
            two_qubit: Vec::new(),
            readout: ReadoutError::default(),
        }
    }

    /// A simple depolarizing model with separate 1-qubit / 2-qubit error
    /// rates and symmetric readout error — the shape used for the IBM-Q
    /// device models.
    pub fn depolarizing(p1: f64, p2: f64, readout: f64) -> Result<Self, SimError> {
        let c1 = NoiseChannel::Depolarizing(p1);
        let c2 = NoiseChannel::Depolarizing(p2);
        c1.validate()?;
        c2.validate()?;
        Ok(NoiseModel {
            single_qubit: vec![c1],
            two_qubit: vec![c2],
            readout: ReadoutError::new(readout, readout)?,
        })
    }

    /// Whether the model is exactly noise-free.
    pub fn is_ideal(&self) -> bool {
        self.single_qubit.is_empty()
            && self.two_qubit.is_empty()
            && self.readout == ReadoutError::default()
    }

    /// The channels to apply to each qubit after executing `gate`.
    pub fn channels_for_gate(&self, gate: &Gate) -> Vec<(usize, NoiseChannel)> {
        let qubits = gate.qubits();
        let channels = if qubits.len() == 1 {
            &self.single_qubit
        } else {
            &self.two_qubit
        };
        let mut out = Vec::new();
        for &q in &qubits {
            for &c in channels {
                out.push((q, c));
            }
        }
        out
    }

    /// Applies the per-gate noise to a state vector via trajectory sampling.
    pub fn apply_after_gate<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        gate: &Gate,
        rng: &mut R,
    ) -> Result<(), SimError> {
        for (q, c) in self.channels_for_gate(gate) {
            c.apply_trajectory(state, q, rng)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kraus_completeness(channel: NoiseChannel) -> f64 {
        // Σ K† K should equal the identity.
        let kraus = channel.kraus_operators();
        let mut sum = CMatrix::zeros(2, 2);
        for k in &kraus {
            sum = sum.add(&k.adjoint().matmul(k));
        }
        sum.max_abs_diff(&CMatrix::identity(2))
    }

    #[test]
    fn kraus_operators_are_trace_preserving() {
        for ch in [
            NoiseChannel::Depolarizing(0.1),
            NoiseChannel::BitFlip(0.25),
            NoiseChannel::PhaseFlip(0.3),
            NoiseChannel::AmplitudeDamping(0.4),
            NoiseChannel::PhaseDamping(0.2),
        ] {
            assert!(
                kraus_completeness(ch) < 1e-12,
                "channel {ch:?} is not trace preserving"
            );
        }
    }

    #[test]
    fn invalid_probabilities_rejected() {
        assert!(NoiseChannel::Depolarizing(1.5).validate().is_err());
        assert!(NoiseChannel::BitFlip(-0.1).validate().is_err());
        assert!(NoiseChannel::Depolarizing(f64::NAN).validate().is_err());
        assert!(ReadoutError::new(0.5, 1.2).is_err());
        assert!(NoiseModel::depolarizing(2.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn trajectory_preserves_normalisation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H(0)).unwrap();
        for _ in 0..50 {
            NoiseChannel::Depolarizing(0.2)
                .apply_trajectory(&mut sv, 0, &mut rng)
                .unwrap();
            NoiseChannel::AmplitudeDamping(0.1)
                .apply_trajectory(&mut sv, 1, &mut rng)
                .unwrap();
            assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bit_flip_trajectory_statistics() {
        // Starting from |0>, a bit-flip channel with p = 0.3 should leave the
        // qubit in |1> about 30 % of the time.
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 4000;
        let mut ones = 0;
        for _ in 0..trials {
            let mut sv = StateVector::zero_state(1);
            NoiseChannel::BitFlip(0.3)
                .apply_trajectory(&mut sv, 0, &mut rng)
                .unwrap();
            if sv.probability_of_one(0).unwrap() > 0.5 {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.03, "observed flip fraction {frac}");
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        // |1> under repeated amplitude damping decays towards |0>.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 2000;
        let mut stayed_excited = 0;
        for _ in 0..trials {
            let mut sv = StateVector::zero_state(1);
            sv.apply_gate(&Gate::X(0)).unwrap();
            NoiseChannel::AmplitudeDamping(0.4)
                .apply_trajectory(&mut sv, 0, &mut rng)
                .unwrap();
            if sv.probability_of_one(0).unwrap() > 0.5 {
                stayed_excited += 1;
            }
        }
        let frac = stayed_excited as f64 / trials as f64;
        assert!((frac - 0.6).abs() < 0.04, "excited fraction {frac}");
    }

    #[test]
    fn readout_error_corrupts_probability() {
        let ro = ReadoutError::new(0.1, 0.2).unwrap();
        assert!((ro.corrupt_probability(0.0) - 0.1).abs() < 1e-12);
        assert!((ro.corrupt_probability(1.0) - 0.8).abs() < 1e-12);
        let mid = ro.corrupt_probability(0.5);
        assert!((mid - (0.5 * 0.1 + 0.5 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn readout_error_corrupts_bits_at_expected_rate() {
        let ro = ReadoutError::new(0.25, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let flips = (0..4000)
            .filter(|_| ro.corrupt_bit(false, &mut rng))
            .count();
        let frac = flips as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03);
    }

    #[test]
    fn noise_model_channel_selection() {
        let model = NoiseModel::depolarizing(0.01, 0.05, 0.02).unwrap();
        assert!(!model.is_ideal());
        assert!(NoiseModel::ideal().is_ideal());
        let single = model.channels_for_gate(&Gate::H(0));
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].1, NoiseChannel::Depolarizing(0.01));
        let double = model.channels_for_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(double.len(), 2);
        assert_eq!(double[0].1, NoiseChannel::Depolarizing(0.05));
    }

    #[test]
    fn ideal_model_does_not_disturb_state() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = NoiseModel::ideal();
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::H(0)).unwrap();
        let before = sv.clone();
        model
            .apply_after_gate(&mut sv, &Gate::H(0), &mut rng)
            .unwrap();
        assert_eq!(sv, before);
    }
}
