//! Parallel batch execution with deterministic per-job randomness.
//!
//! Training evaluates the same circuit shape against many parameter vectors
//! (every sample × class × parameter-shift evaluation); inference scores a
//! batch of samples against every class state. A [`BatchExecutor`] runs such
//! job lists over a small scoped thread pool (`vendor/threadpool`) while
//! keeping the results **bit-identical regardless of thread count**:
//!
//! * each job receives its own [`StdRng`] seeded by SplitMix64 from a root
//!   (or caller-provided base) seed and the job's stable index — never from
//!   a shared stream whose consumption order would depend on scheduling;
//! * results are returned in job order, not completion order.
//!
//! Consequently `BatchExecutor::new(1, seed)`, `::new(2, seed)` and
//! `::new(8, seed)` produce the same bytes for the same jobs, and a
//! single-threaded pool is exactly a sequential loop — which is what makes
//! the batched training path verifiable against the sequential golden run.

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::executor::Executor;
use crate::fusion::FusedCircuit;
use crate::intra::IntraThreads;
use crate::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use threadpool::ThreadPool;

/// Expands a seed through SplitMix64 — the same scrambler `rand` documents
/// for `seed_from_u64` — so consecutive job indices land on statistically
/// independent streams.
fn splitmix64(mut state: u64) -> u64 {
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parallel evaluator for batches of circuit jobs.
///
/// Construction is cheap (no OS threads are held between batches), so a
/// `BatchExecutor` can be freely cloned into trainers and estimators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchExecutor {
    pool: ThreadPool,
    root_seed: u64,
    intra: IntraThreads,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor::single_threaded(0)
    }
}

impl BatchExecutor {
    /// Creates a batch executor running jobs on `threads` workers, deriving
    /// per-job RNG streams from `root_seed`.
    ///
    /// # Panics
    /// Panics if `threads` is zero — rejected at construction, like
    /// [`Executor::with_trajectories`] with zero trajectories.
    pub fn new(threads: usize, root_seed: u64) -> Self {
        BatchExecutor {
            pool: ThreadPool::new(threads),
            root_seed,
            intra: IntraThreads::single_threaded(),
        }
    }

    /// A batch executor that runs every job inline on the calling thread.
    pub fn single_threaded(root_seed: u64) -> Self {
        BatchExecutor {
            pool: ThreadPool::single_threaded(),
            root_seed,
            intra: IntraThreads::single_threaded(),
        }
    }

    /// Sets the *within*-circuit thread budget: each job's kernel sweeps
    /// additionally fan out over this many workers once a register crosses
    /// the budget's qubit threshold, so the total budget is
    /// `threads × intra.threads()`. A pure throughput knob — results are
    /// bit-identical for any combination (see [`IntraThreads`]).
    pub fn with_intra(mut self, intra: IntraThreads) -> Self {
        self.intra = intra;
        self
    }

    /// The configured within-circuit thread budget.
    pub fn intra(&self) -> &IntraThreads {
        &self.intra
    }

    /// A batch executor sized from the environment: the across-circuit
    /// worker count from `QUCLASSI_THREADS` (unset → the machine's
    /// available parallelism) and the within-circuit budget from
    /// `QUCLASSI_INTRA_THREADS` (unset → 1, i.e. intra-circuit parallelism
    /// is opt-in — defaulting both to all cores would oversubscribe by the
    /// square of the core count). This is the constructor servers, benches
    /// and examples should use — both knobs are pure throughput knobs
    /// (results are bit-identical for any values), so it is safe to let
    /// the deployment environment choose them.
    ///
    /// # Errors
    /// A `QUCLASSI_THREADS` or `QUCLASSI_INTRA_THREADS` value that is set
    /// but does not parse as a positive integer is **rejected** with
    /// [`SimError::InvalidConfiguration`], not silently replaced by a
    /// default: a typo in a deployment knob must surface at startup, not
    /// degrade a server to an unintended thread count.
    pub fn from_env(root_seed: u64) -> Result<Self, SimError> {
        let across = std::env::var("QUCLASSI_THREADS").ok();
        let intra = std::env::var("QUCLASSI_INTRA_THREADS").ok();
        Self::from_thread_specs(across.as_deref(), intra.as_deref(), root_seed)
    }

    /// The pure core of [`BatchExecutor::from_env`]: builds an executor
    /// from optional `QUCLASSI_THREADS` / `QUCLASSI_INTRA_THREADS`-style
    /// specifications (see [`BatchExecutor::from_thread_spec`] and
    /// [`IntraThreads::from_thread_spec`] for the accepted forms).
    pub fn from_thread_specs(
        across: Option<&str>,
        intra: Option<&str>,
        root_seed: u64,
    ) -> Result<Self, SimError> {
        Ok(Self::from_thread_spec(across, root_seed)?
            .with_intra(IntraThreads::from_thread_spec(intra)?))
    }

    /// The pure core of [`BatchExecutor::from_env`]: builds an executor from
    /// an optional `QUCLASSI_THREADS`-style specification. `None` (and the
    /// empty string, i.e. `QUCLASSI_THREADS=`) mean "unset — use available
    /// parallelism"; anything else must parse as a positive integer.
    pub fn from_thread_spec(spec: Option<&str>, root_seed: u64) -> Result<Self, SimError> {
        let threads = match spec.map(str::trim).filter(|s| !s.is_empty()) {
            None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                Ok(_) => {
                    return Err(SimError::InvalidConfiguration(
                        "QUCLASSI_THREADS must be a positive integer; \
                         0 threads cannot make progress (unset the variable \
                         to use all available cores)"
                            .to_string(),
                    ))
                }
                Err(_) => {
                    return Err(SimError::InvalidConfiguration(format!(
                        "QUCLASSI_THREADS must be a positive integer, got '{raw}'"
                    )))
                }
            },
        };
        Ok(BatchExecutor::new(threads, root_seed))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The root seed per-job streams are derived from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The seed of job `index` under base seed `base`: a pure function of
    /// `(base, index)`, independent of thread count and scheduling.
    pub fn job_seed(base: u64, index: u64) -> u64 {
        splitmix64(base ^ splitmix64(index))
    }

    /// Runs `f` over `jobs` in parallel. Each invocation receives the job's
    /// index, the job itself, and a private RNG seeded from the executor's
    /// root seed and that index. Results come back in job order.
    pub fn run<T, U, F>(&self, jobs: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T, &mut StdRng) -> U + Sync,
    {
        self.run_seeded(self.root_seed, jobs, f)
    }

    /// Like [`BatchExecutor::run`] but derives per-job RNGs from `base`
    /// instead of the root seed. Callers that dispatch many batches (e.g.
    /// one per training step) thread a fresh base seed through each batch so
    /// stochastic estimates do not repeat, while thread-count invariance is
    /// preserved within every batch.
    pub fn run_seeded<T, U, F>(&self, base: u64, jobs: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T, &mut StdRng) -> U + Sync,
    {
        self.pool.scoped_map(jobs, |index, job| {
            let mut rng = StdRng::seed_from_u64(Self::job_seed(base, index as u64));
            f(index, job, &mut rng)
        })
    }

    /// Like [`BatchExecutor::run_seeded`], but every worker additionally
    /// carries a private scratch value created once by `init` and reused
    /// across all the jobs that worker runs — the hook that lets execution
    /// loops reuse statevector buffers instead of allocating one per job.
    /// Thread-count invariance is preserved as long as jobs fully
    /// overwrite whatever scratch state they read (buffers reused by the
    /// executor paths here satisfy that by construction).
    pub fn run_seeded_with_scratch<T, U, S, I, F>(
        &self,
        base: u64,
        jobs: Vec<T>,
        init: I,
        f: F,
    ) -> Vec<U>
    where
        T: Send,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, T, &mut StdRng, &mut S) -> U + Sync,
    {
        self.pool
            .scoped_map_with(jobs, init, |index, job, scratch| {
                let mut rng = StdRng::seed_from_u64(Self::job_seed(base, index as u64));
                f(index, job, &mut rng, scratch)
            })
    }

    /// Evaluates `P(qubit = 1)` for each parameter vector against a compiled
    /// circuit through `executor` (which may be noisy and/or shot-limited).
    ///
    /// One `(state, circuit)` evolution per parameter set, fanned out over
    /// the pool; the fused fast path is used whenever the executor's
    /// configuration allows it.
    pub fn probabilities_of_one(
        &self,
        executor: &Executor,
        circuit: &FusedCircuit,
        param_sets: &[Vec<f64>],
        qubit: usize,
        base_seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        let executor = executor.clone().with_intra(self.intra.clone());
        let jobs: Vec<&[f64]> = param_sets.iter().map(Vec::as_slice).collect();
        self.run_seeded_with_scratch(
            base_seed,
            jobs,
            || StateVector::zero_state(circuit.num_qubits()),
            |_, params, rng, scratch| {
                executor.probability_of_one_compiled_reusing(circuit, params, qubit, rng, scratch)
            },
        )
        .into_iter()
        .collect()
    }

    /// Like [`BatchExecutor::probabilities_of_one`] but with a *different*
    /// compiled circuit per job: each entry pairs a fused circuit with the
    /// parameter vector to bind into it. This is the inference fan-out shape
    /// — samples × classes, where every class owns its own precompiled
    /// circuit — kept as one flat job list so per-job RNG streams stay a
    /// pure function of `(base_seed, job index)` and results remain
    /// bit-identical for any thread count.
    pub fn probabilities_of_one_each(
        &self,
        executor: &Executor,
        jobs: &[(&FusedCircuit, &[f64])],
        qubit: usize,
        base_seed: u64,
    ) -> Result<Vec<f64>, SimError> {
        let executor = executor.clone().with_intra(self.intra.clone());
        let width = jobs.first().map_or(1, |(c, _)| c.num_qubits());
        let jobs: Vec<(&FusedCircuit, &[f64])> = jobs.to_vec();
        self.run_seeded_with_scratch(
            base_seed,
            jobs,
            // Jobs may carry different register widths; the scratch's
            // buffer-reusing copy resizes on a width change, so sizing for
            // the first job is only a warm start, never a constraint.
            || StateVector::zero_state(width),
            |_, (circuit, params), rng, scratch| {
                executor.probability_of_one_compiled_reusing(circuit, params, qubit, rng, scratch)
            },
        )
        .into_iter()
        .collect()
    }

    /// Executes a compiled circuit to a final statevector for each parameter
    /// set (ideal evolution — no noise, no shots), in parallel.
    pub fn execute_statevectors(
        &self,
        circuit: &FusedCircuit,
        param_sets: &[Vec<f64>],
    ) -> Result<Vec<StateVector>, SimError> {
        let jobs: Vec<&[f64]> = param_sets.iter().map(Vec::as_slice).collect();
        self.run(jobs, |_, params, _| {
            circuit.execute_with(params, &self.intra)
        })
        .into_iter()
        .collect()
    }

    /// Samples `shots` full-register measurements for each parameter set,
    /// returning one histogram per set (see [`Executor::sample_counts`]).
    pub fn sample_counts(
        &self,
        executor: &Executor,
        circuit: &Circuit,
        param_sets: &[Vec<f64>],
        shots: usize,
        base_seed: u64,
    ) -> Result<Vec<Vec<(usize, usize)>>, SimError> {
        let jobs: Vec<&[f64]> = param_sets.iter().map(Vec::as_slice).collect();
        self.run_seeded(base_seed, jobs, |_, params, rng| {
            executor.sample_counts(circuit, params, shots, rng)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn ry_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.ry_param(0, 0).ry_param(1, 1).cnot(0, 1);
        c
    }

    #[test]
    fn default_is_single_threaded() {
        let b = BatchExecutor::default();
        assert_eq!(b.threads(), 1);
        assert_eq!(b.root_seed(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected_at_construction() {
        let _ = BatchExecutor::new(0, 7);
    }

    #[test]
    fn job_seeds_are_stable_and_distinct() {
        let a = BatchExecutor::job_seed(42, 0);
        let b = BatchExecutor::job_seed(42, 1);
        let c = BatchExecutor::job_seed(43, 0);
        assert_eq!(a, BatchExecutor::job_seed(42, 0));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_results_are_thread_count_invariant() {
        use rand::Rng;
        let jobs: Vec<usize> = (0..40).collect();
        let eval = |b: &BatchExecutor| {
            b.run(jobs.clone(), |i, job, rng| {
                assert_eq!(i, job);
                rng.gen::<u64>()
            })
        };
        let one = eval(&BatchExecutor::new(1, 99));
        let two = eval(&BatchExecutor::new(2, 99));
        let eight = eval(&BatchExecutor::new(8, 99));
        assert_eq!(one, two);
        assert_eq!(one, eight);
        // Different root seed → different streams.
        assert_ne!(one, eval(&BatchExecutor::new(1, 100)));
    }

    #[test]
    fn probabilities_match_direct_execution() {
        let circuit = ry_circuit();
        let fused = FusedCircuit::compile(&circuit);
        let exec = Executor::ideal();
        let sets: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.2 * i as f64, 1.0 - 0.1 * i as f64])
            .collect();
        let batch = BatchExecutor::new(4, 0);
        let got = batch
            .probabilities_of_one(&exec, &fused, &sets, 1, 0)
            .unwrap();
        for (params, p) in sets.iter().zip(got.iter()) {
            let direct = circuit
                .execute(params)
                .unwrap()
                .probability_of_one(1)
                .unwrap();
            assert!((p - direct).abs() < 1e-12, "{p} vs {direct}");
        }
    }

    #[test]
    fn execute_statevectors_matches_sequential() {
        let circuit = ry_circuit();
        let fused = FusedCircuit::compile(&circuit);
        let sets: Vec<Vec<f64>> = vec![vec![0.1, 0.2], vec![1.5, -0.4], vec![3.0, 0.0]];
        let batch = BatchExecutor::new(8, 1);
        let states = batch.execute_statevectors(&fused, &sets).unwrap();
        for (params, sv) in sets.iter().zip(states.iter()) {
            assert_eq!(sv, &fused.execute(params).unwrap());
        }
    }

    #[test]
    fn per_job_circuits_match_direct_execution_for_any_thread_count() {
        let a = {
            let mut c = Circuit::new(2);
            c.ry_param(0, 0).cnot(0, 1);
            c
        };
        let b = {
            let mut c = Circuit::new(2);
            c.h(0).rz_param(1, 0).cnot(1, 0);
            c
        };
        let fused_a = FusedCircuit::compile(&a);
        let fused_b = FusedCircuit::compile(&b);
        let pa = vec![0.4];
        let pb = vec![-1.1];
        let jobs: Vec<(&FusedCircuit, &[f64])> =
            vec![(&fused_a, &pa), (&fused_b, &pb), (&fused_a, &pb)];
        let exec = Executor::ideal();
        let mut reference = Vec::new();
        for (circuit, params) in &jobs {
            reference.push(
                circuit
                    .source()
                    .execute(params)
                    .unwrap()
                    .probability_of_one(0)
                    .unwrap(),
            );
        }
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let got = BatchExecutor::new(threads, 0)
                .probabilities_of_one_each(&exec, &jobs, 0, 5)
                .unwrap();
            for (g, r) in got.iter().zip(reference.iter()) {
                assert!((g - r).abs() < 1e-12, "{g} vs {r}");
            }
            runs.push(got.into_iter().map(f64::to_bits).collect::<Vec<_>>());
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn from_env_honours_quclassi_threads() {
        // Only assert on the ambient-environment path here: mutating the
        // process environment in tests would race other threads. The
        // explicit specs are covered by `from_thread_spec` below.
        let b = BatchExecutor::from_env(3).unwrap();
        assert!(b.threads() >= 1);
        assert_eq!(b.root_seed(), 3);
    }

    #[test]
    fn thread_spec_accepts_positive_integers() {
        let b = BatchExecutor::from_thread_spec(Some("4"), 9).unwrap();
        assert_eq!(b.threads(), 4);
        assert_eq!(b.root_seed(), 9);
        // Surrounding whitespace is tolerated (shell quoting artefacts).
        assert_eq!(
            BatchExecutor::from_thread_spec(Some(" 2 "), 0)
                .unwrap()
                .threads(),
            2
        );
        // Unset and empty both mean "use available parallelism".
        assert!(BatchExecutor::from_thread_spec(None, 0).unwrap().threads() >= 1);
        assert!(
            BatchExecutor::from_thread_spec(Some(""), 0)
                .unwrap()
                .threads()
                >= 1
        );
    }

    #[test]
    fn thread_spec_rejects_zero_and_garbage() {
        for bad in ["0", "abc", "-2", "1.5", "2x"] {
            let err =
                BatchExecutor::from_thread_spec(Some(bad), 0).expect_err("spec should be rejected");
            match err {
                SimError::InvalidConfiguration(msg) => {
                    assert!(msg.contains("QUCLASSI_THREADS"), "{msg}")
                }
                other => panic!("unexpected error for {bad:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn errors_propagate_from_jobs() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, 0.0));
        c.ry_param(0, 5); // needs 6 params
        let fused = FusedCircuit::compile(&c);
        let batch = BatchExecutor::new(2, 0);
        let err = batch.execute_statevectors(&fused, &[vec![0.1]]);
        assert!(matches!(err, Err(SimError::UnboundParameter { .. })));
    }
}
