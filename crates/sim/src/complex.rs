//! A minimal, dependency-free complex number type used throughout the
//! simulator.
//!
//! Only the operations needed by a state-vector / density-matrix simulator
//! are provided: arithmetic, conjugation, norm, polar construction and a few
//! convenience constants. The representation is a pair of `f64`s, `#[repr(C)]`
//! so that slices of amplitudes have a predictable layout.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `self * other.conj()`.
    #[inline]
    pub fn mul_conj(self, other: Self) -> Self {
        Complex::new(
            self.re * other.re + self.im * other.im,
            self.im * other.re - self.re * other.im,
        )
    }

    /// Scales the complex number by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from_real(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert!((a * b).approx_eq(Complex::new(11.0, 2.0), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.3, -1.7);
        let b = Complex::new(-2.0, 0.5);
        let c = a * b;
        assert!((c / b).approx_eq(a, 1e-10));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!((a.norm() - 5.0).abs() < TOL);
        assert!((a.norm_sqr() - 25.0).abs() < TOL);
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!(p.approx_eq(Complex::from_real(25.0), TOL));
    }

    #[test]
    fn polar_and_cis() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::new(0.0, 2.0), TOL));
        let u = Complex::cis(std::f64::consts::PI);
        assert!(u.approx_eq(Complex::new(-1.0, 0.0), TOL));
        assert!((u.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn arg_is_phase() {
        let z = Complex::new(0.0, 1.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn mul_conj_shortcut() {
        let a = Complex::new(1.5, -0.5);
        let b = Complex::new(-0.25, 2.0);
        assert!(a.mul_conj(b).approx_eq(a * b.conj(), TOL));
    }

    #[test]
    fn inverse_of_zero_is_not_finite() {
        assert!(!Complex::ZERO.inv().is_finite());
        assert!(Complex::new(1.0, 1.0).is_finite());
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert_eq!(s, Complex::new(6.0, -6.0));
    }

    #[test]
    fn display_formats_sign() {
        let pos = format!("{}", Complex::new(1.0, 2.0));
        assert!(pos.contains('+'));
        let neg = format!("{}", Complex::new(1.0, -2.0));
        assert!(neg.contains('-'));
    }
}
