//! # quclassi-sim
//!
//! A dependency-light quantum circuit simulator built as the substrate for
//! the QuClassi reproduction (Stein et al., MLSys 2022). The paper uses
//! Qiskit + IBM-Q/IonQ hardware; this crate provides the equivalent
//! functionality in pure Rust:
//!
//! * [`complex::Complex`] — complex arithmetic,
//! * [`linalg::CMatrix`] — small dense complex matrices,
//! * [`gate::Gate`] — the gate set (all gates used by QuClassi plus a few
//!   standard ones),
//! * [`state::StateVector`] — pure-state simulation up to ~26 qubits,
//! * [`density::DensityMatrix`] — exact mixed-state simulation for small
//!   registers,
//! * [`circuit::Circuit`] — parameterised circuits with symbolic parameters,
//! * [`noise`] — Kraus channels, readout error, gate-level noise models,
//! * [`device`] — coupling maps and calibrated device models (IBM-Q London /
//!   New York / Melbourne / Rome / Cairo, IonQ),
//! * [`transpile`] — decomposition to the native basis and SWAP-insertion
//!   routing with CNOT accounting,
//! * [`executor::Executor`] — the execution façade (ideal / noisy /
//!   shot-sampled) consumed by the `quclassi` crate,
//! * [`fusion::FusedCircuit`] — gate fusion: circuits compiled once into
//!   dense `2^k × 2^k` unitaries (k ≤ 3) and reused across evaluations,
//!   with [`fusion::BoundFusedCircuit`] for binding one parameter vector in
//!   ahead of repeated replays,
//! * [`batch::BatchExecutor`] — parallel batch evaluation over a scoped
//!   thread pool with deterministic per-job RNG streams (results are
//!   bit-identical for any thread count),
//! * [`gemm::StateMatrix`] — many same-width pure states packed into one
//!   dense SoA matrix so batched fidelities become a cache-blocked GEMM
//!   (bit-identical to the per-pair reduction path),
//! * [`intra::IntraThreads`] — the *within*-circuit thread budget: large
//!   statevector sweeps and reductions split into cache-block-sized
//!   disjoint chunks over the same scoped pool, bit-identical for any
//!   thread count (`QUCLASSI_INTRA_THREADS`). Composes multiplicatively
//!   with the across-circuit budget of [`batch::BatchExecutor`],
//! * [`profile`] — opt-in kernel profiling counters (`QUCLASSI_PROFILE`):
//!   fused-group invocations, dense vs diagonal vs permutation sweeps, and
//!   amplitudes touched, at near-zero cost when disabled.
//!
//! ## Quick example
//!
//! ```
//! use quclassi_sim::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build a Bell-pair circuit and measure qubit 1.
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cnot(0, 1);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let p1 = Executor::ideal()
//!     .probability_of_one(&circuit, &[], 1, &mut rng)
//!     .unwrap();
//! assert!((p1 - 0.5).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod circuit;
pub mod complex;
pub mod density;
pub mod device;
pub mod error;
pub mod executor;
pub mod fusion;
pub mod gate;
pub mod gemm;
pub mod intra;
pub mod linalg;
pub mod noise;
mod partition;
pub mod profile;
pub(crate) mod quclassi_sync;
pub mod state;
pub mod transpile;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::batch::BatchExecutor;
    pub use crate::circuit::{Circuit, Operation};
    pub use crate::complex::Complex;
    pub use crate::density::DensityMatrix;
    pub use crate::device::{CouplingMap, DeviceModel};
    pub use crate::error::SimError;
    pub use crate::executor::{Executor, Method};
    pub use crate::fusion::{BoundFusedCircuit, FusedCircuit};
    pub use crate::gate::Gate;
    pub use crate::gemm::StateMatrix;
    pub use crate::intra::IntraThreads;
    pub use crate::linalg::CMatrix;
    pub use crate::noise::{NoiseChannel, NoiseModel, ReadoutError};
    pub use crate::state::StateVector;
    pub use crate::transpile::{decompose_all, decompose_gate, transpile, TranspileReport};
}
