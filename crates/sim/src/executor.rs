//! Circuit execution backends.
//!
//! The [`Executor`] is the single entry point QuClassi uses to evaluate a
//! circuit: it hides whether the run is ideal or noisy, exact or sampled.
//!
//! * **Ideal** — state-vector simulation, exact probabilities.
//! * **Noisy trajectories** — state-vector simulation with stochastic Kraus
//!   branches after each gate, averaged over a configurable number of
//!   trajectories. Works for any register size the state-vector engine
//!   supports.
//! * **Noisy density matrix** — exact noisy simulation for small registers.
//!
//! Shot noise is layered on top: when a shot count is configured, the
//! estimated probability is replaced by a binomial sample (and corrupted by
//! the readout-error model), which is exactly how estimates behave on real
//! hardware with a finite number of repetitions.

use crate::circuit::Circuit;
use crate::density::DensityMatrix;
use crate::error::SimError;
use crate::fusion::FusedCircuit;
use crate::intra::IntraThreads;
use crate::noise::NoiseModel;
use crate::state::StateVector;
use rand::Rng;

/// How the quantum state is propagated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Pure state-vector simulation (ideal, or trajectory-sampled when noisy).
    StateVector,
    /// Exact density-matrix simulation (small registers only).
    DensityMatrix,
}

/// A configured execution backend.
///
/// ```
/// use quclassi_sim::circuit::Circuit;
/// use quclassi_sim::executor::Executor;
/// use rand::SeedableRng;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///
/// // Exact probabilities through the ideal backend…
/// let exact = Executor::ideal()
///     .probability_of_one(&bell, &[], 1, &mut rng)
///     .unwrap();
/// assert!((exact - 0.5).abs() < 1e-12);
///
/// // …and a finite-shot estimate of the same quantity.
/// let sampled = Executor::ideal()
///     .with_shots(Some(4000))
///     .probability_of_one(&bell, &[], 1, &mut rng)
///     .unwrap();
/// assert!((sampled - 0.5).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct Executor {
    noise: NoiseModel,
    method: Method,
    shots: Option<usize>,
    trajectories: usize,
    intra: IntraThreads,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::ideal()
    }
}

impl Executor {
    /// An ideal, exact-probability executor.
    pub fn ideal() -> Self {
        Executor {
            noise: NoiseModel::ideal(),
            method: Method::StateVector,
            shots: None,
            trajectories: 1,
            intra: IntraThreads::single_threaded(),
        }
    }

    /// A noisy executor using trajectory sampling on the state vector.
    pub fn noisy(noise: NoiseModel) -> Self {
        Executor {
            noise,
            method: Method::StateVector,
            shots: None,
            trajectories: 16,
            intra: IntraThreads::single_threaded(),
        }
    }

    /// A noisy executor using exact density-matrix evolution.
    pub fn noisy_density(noise: NoiseModel) -> Self {
        Executor {
            noise,
            method: Method::DensityMatrix,
            shots: None,
            trajectories: 1,
            intra: IntraThreads::single_threaded(),
        }
    }

    /// Sets the intra-circuit thread budget: compiled ideal state-vector
    /// runs split every kernel sweep and measurement reduction over this
    /// many workers once the register crosses the budget's qubit
    /// threshold. A pure throughput knob — results are bit-identical for
    /// any value.
    pub fn with_intra(mut self, intra: IntraThreads) -> Self {
        self.intra = intra;
        self
    }

    /// The configured intra-circuit thread budget.
    pub fn intra(&self) -> &IntraThreads {
        &self.intra
    }

    /// Sets the number of measurement shots; `None` means exact expectation.
    pub fn with_shots(mut self, shots: Option<usize>) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the number of noise trajectories averaged per evaluation
    /// (ignored for ideal and density-matrix execution).
    ///
    /// # Panics
    /// Panics if `trajectories` is zero: an executor that averages zero
    /// trajectories can never produce an estimate, so the mistake is
    /// rejected at construction instead of being silently clamped.
    pub fn with_trajectories(mut self, trajectories: usize) -> Self {
        assert!(
            trajectories > 0,
            "an executor needs at least one trajectory"
        );
        self.trajectories = trajectories;
        self
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The configured shot count.
    pub fn shots(&self) -> Option<usize> {
        self.shots
    }

    /// Whether the executor adds any nondeterminism (noise or shots).
    pub fn is_exact(&self) -> bool {
        self.noise.is_ideal() && self.shots.is_none()
    }

    /// Runs the circuit and returns the exact (or trajectory-averaged)
    /// probability that `qubit` measures |1⟩, before shot sampling.
    fn raw_probability_of_one<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        match self.method {
            Method::DensityMatrix => {
                let gates = circuit.bind(params)?;
                let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
                if self.noise.is_ideal() {
                    rho.apply_gates(&gates)?;
                } else {
                    rho.apply_gates_with_noise(&gates, &self.noise)?;
                }
                Ok(rho.probability_of_one(qubit)?)
            }
            Method::StateVector => {
                if self.noise.is_ideal() {
                    let sv = circuit.execute_with(params, &self.intra)?;
                    return sv.probability_of_one_with(qubit, &self.intra);
                }
                let gates = circuit.bind(params)?;
                let mut acc = 0.0;
                for _ in 0..self.trajectories {
                    let mut sv = StateVector::zero_state(circuit.num_qubits());
                    for g in &gates {
                        sv.apply_gate(g)?;
                        self.noise.apply_after_gate(&mut sv, g, rng)?;
                    }
                    acc += sv.probability_of_one(qubit)?;
                }
                Ok(acc / self.trajectories as f64)
            }
        }
    }

    /// Same as [`Executor::raw_probability_of_one`] but evaluating a
    /// pre-compiled fused circuit. Fusion only serves the ideal state-vector
    /// path — noisy trajectories interleave Kraus branches between gates and
    /// density-matrix evolution binds per gate, so both fall back to the
    /// fused circuit's [`FusedCircuit::source`].
    fn raw_probability_of_one_compiled<R: Rng + ?Sized>(
        &self,
        fused: &FusedCircuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        if self.method == Method::StateVector && self.noise.is_ideal() {
            let sv = fused.execute_with(params, &self.intra)?;
            return sv.probability_of_one_with(qubit, &self.intra);
        }
        self.raw_probability_of_one(fused.source(), params, qubit, rng)
    }

    /// Applies readout corruption and (if configured) shot sampling to an
    /// exact probability.
    fn sample_readout<R: Rng + ?Sized>(&self, p_true: f64, rng: &mut R) -> f64 {
        let p_read = self.noise.readout.corrupt_probability(p_true);
        match self.shots {
            None => p_read,
            Some(shots) => {
                let shots = shots.max(1);
                let mut ones = 0usize;
                for _ in 0..shots {
                    if rng.gen::<f64>() < p_read {
                        ones += 1;
                    }
                }
                ones as f64 / shots as f64
            }
        }
    }

    /// Estimates the probability that `qubit` measures |1⟩ after running the
    /// circuit, including readout error and (if configured) shot noise.
    pub fn probability_of_one<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        let p_true = self.raw_probability_of_one(circuit, params, qubit, rng)?;
        Ok(self.sample_readout(p_true, rng))
    }

    /// Estimates the probability that `qubit` measures |1⟩ through a
    /// pre-compiled circuit: the fast path for workloads that evaluate one
    /// circuit shape against many parameter vectors (training, batched
    /// inference). Ideal state-vector runs execute the fused program; noisy
    /// and density-matrix configurations transparently fall back to per-gate
    /// evolution of the source circuit, so results are configuration-correct
    /// either way.
    pub fn probability_of_one_compiled<R: Rng + ?Sized>(
        &self,
        fused: &FusedCircuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        let p_true = self.raw_probability_of_one_compiled(fused, params, qubit, rng)?;
        Ok(self.sample_readout(p_true, rng))
    }

    /// [`Executor::probability_of_one_compiled`] evaluating into a
    /// caller-owned scratch statevector, so a loop over many evaluations
    /// of one circuit shape (a batch worker, a serving thread) reuses one
    /// amplitude buffer instead of allocating per evaluation. Bit-identical
    /// to the non-reusing call; configurations the fused fast path cannot
    /// serve (noise, density matrix) transparently fall back to it and
    /// leave the scratch untouched.
    pub fn probability_of_one_compiled_reusing<R: Rng + ?Sized>(
        &self,
        fused: &FusedCircuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
        scratch: &mut StateVector,
    ) -> Result<f64, SimError> {
        if self.method == Method::StateVector && self.noise.is_ideal() {
            fused.execute_reusing(params, scratch, &self.intra)?;
            let p_true = scratch.probability_of_one_with(qubit, &self.intra)?;
            return Ok(self.sample_readout(p_true, rng));
        }
        self.probability_of_one_compiled(fused, params, qubit, rng)
    }

    /// Estimates ⟨Z⟩ on a qubit: `1 - 2·P(1)`.
    pub fn expectation_z<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        qubit: usize,
        rng: &mut R,
    ) -> Result<f64, SimError> {
        Ok(1.0 - 2.0 * self.probability_of_one(circuit, params, qubit, rng)?)
    }

    /// Runs the circuit and samples `shots` full-register measurements,
    /// returning a histogram over basis-state indices. Noise is applied per
    /// trajectory (one trajectory per shot for noisy state-vector runs).
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        circuit: &Circuit,
        params: &[f64],
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<(usize, usize)>, SimError> {
        let mut histogram = std::collections::BTreeMap::new();
        match self.method {
            Method::DensityMatrix => {
                let gates = circuit.bind(params)?;
                let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
                if self.noise.is_ideal() {
                    rho.apply_gates(&gates)?;
                } else {
                    rho.apply_gates_with_noise(&gates, &self.noise)?;
                }
                let probs = rho.probabilities();
                for _ in 0..shots {
                    let r: f64 = rng.gen();
                    let mut acc = 0.0;
                    let mut outcome = probs.len() - 1;
                    for (i, p) in probs.iter().enumerate() {
                        acc += p;
                        if r < acc {
                            outcome = i;
                            break;
                        }
                    }
                    *histogram.entry(outcome).or_insert(0usize) += 1;
                }
            }
            Method::StateVector => {
                if self.noise.is_ideal() {
                    let sv = circuit.execute(params)?;
                    for _ in 0..shots {
                        *histogram.entry(sv.sample(rng)).or_insert(0usize) += 1;
                    }
                } else {
                    let gates = circuit.bind(params)?;
                    for _ in 0..shots {
                        let mut sv = StateVector::zero_state(circuit.num_qubits());
                        for g in &gates {
                            sv.apply_gate(g)?;
                            self.noise.apply_after_gate(&mut sv, g, rng)?;
                        }
                        *histogram.entry(sv.sample(rng)).or_insert(0usize) += 1;
                    }
                }
            }
        }
        Ok(histogram.into_iter().collect())
    }

    /// Like [`Executor::sample_counts`] but through a pre-compiled circuit:
    /// ideal state-vector runs execute the fused program once and sample
    /// from the exact distribution; other configurations fall back to the
    /// source circuit.
    pub fn sample_counts_compiled<R: Rng + ?Sized>(
        &self,
        fused: &FusedCircuit,
        params: &[f64],
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<(usize, usize)>, SimError> {
        if self.method == Method::StateVector && self.noise.is_ideal() {
            let sv = fused.execute_with(params, &self.intra)?;
            let mut histogram = std::collections::BTreeMap::new();
            for _ in 0..shots {
                *histogram.entry(sv.sample(rng)).or_insert(0usize) += 1;
            }
            return Ok(histogram.into_iter().collect());
        }
        self.sample_counts(fused.source(), params, shots, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        c
    }

    #[test]
    fn ideal_executor_gives_exact_probabilities() {
        let mut rng = StdRng::seed_from_u64(0);
        let exec = Executor::ideal();
        assert!(exec.is_exact());
        let p = exec
            .probability_of_one(&bell_circuit(), &[], 1, &mut rng)
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shot_noise_converges_to_exact_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let exec = Executor::ideal().with_shots(Some(20_000));
        assert!(!exec.is_exact());
        let p = exec
            .probability_of_one(&bell_circuit(), &[], 0, &mut rng)
            .unwrap();
        assert!((p - 0.5).abs() < 0.02);
    }

    #[test]
    fn parametric_circuit_through_executor() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Circuit::new(1);
        c.ry_param(0, 0);
        let exec = Executor::ideal();
        let x: f64 = 0.3;
        let theta = 2.0 * x.sqrt().asin();
        let p = exec.probability_of_one(&c, &[theta], 0, &mut rng).unwrap();
        assert!((p - x).abs() < 1e-12);
    }

    #[test]
    fn noisy_trajectory_and_density_agree_for_small_circuit() {
        let noise = NoiseModel::depolarizing(0.02, 0.05, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let c = bell_circuit();
        let exact = Executor::noisy_density(noise.clone())
            .probability_of_one(&c, &[], 1, &mut rng)
            .unwrap();
        let sampled = Executor::noisy(noise)
            .with_trajectories(600)
            .probability_of_one(&c, &[], 1, &mut rng)
            .unwrap();
        assert!(
            (exact - sampled).abs() < 0.05,
            "density {exact} vs trajectories {sampled}"
        );
    }

    #[test]
    fn noise_pulls_probability_toward_half() {
        // A deterministic |1> preparation measured through a noisy device
        // gives P(1) strictly below 1.
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = Circuit::new(1);
        c.x(0);
        let noise = NoiseModel::depolarizing(0.05, 0.1, 0.03).unwrap();
        let p = Executor::noisy_density(noise)
            .probability_of_one(&c, &[], 0, &mut rng)
            .unwrap();
        assert!(p < 0.99);
        assert!(p > 0.8);
    }

    #[test]
    fn readout_error_applies_even_without_gate_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut noise = NoiseModel::ideal();
        noise.readout = crate::noise::ReadoutError::new(0.1, 0.1).unwrap();
        let mut c = Circuit::new(1);
        c.x(0);
        let p = Executor::noisy_density(noise)
            .probability_of_one(&c, &[], 0, &mut rng)
            .unwrap();
        assert!((p - 0.9).abs() < 1e-9);
    }

    #[test]
    fn expectation_z_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let exec = Executor::ideal();
        let mut c = Circuit::new(1);
        c.x(0);
        let z = exec.expectation_z(&c, &[], 0, &mut rng).unwrap();
        assert!((z + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_counts_sum_to_shots_and_match_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let exec = Executor::ideal();
        let counts = exec
            .sample_counts(&bell_circuit(), &[], 4000, &mut rng)
            .unwrap();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4000);
        for (outcome, count) in counts {
            assert!(outcome == 0 || outcome == 3, "unexpected outcome {outcome}");
            let frac = count as f64 / 4000.0;
            assert!((frac - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn noisy_sample_counts_include_leakage_outcomes() {
        let mut rng = StdRng::seed_from_u64(8);
        let noise = NoiseModel::depolarizing(0.1, 0.2, 0.0).unwrap();
        let exec = Executor::noisy(noise);
        let counts = exec
            .sample_counts(&bell_circuit(), &[], 500, &mut rng)
            .unwrap();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 500);
        // With strong depolarizing noise some |01> / |10> outcomes appear.
        let leaked: usize = counts
            .iter()
            .filter(|(o, _)| *o == 1 || *o == 2)
            .map(|(_, c)| *c)
            .sum();
        assert!(
            leaked > 0,
            "expected some leakage outcomes under heavy noise"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trajectory")]
    fn zero_trajectories_rejected_at_construction() {
        let _ = Executor::ideal().with_trajectories(0);
    }

    #[test]
    fn compiled_path_matches_uncompiled_for_all_configs() {
        let c = bell_circuit();
        let fused = crate::fusion::FusedCircuit::compile(&c);
        // Ideal: exact equality through the fused fast path.
        let mut rng = StdRng::seed_from_u64(10);
        let exec = Executor::ideal();
        let a = exec.probability_of_one(&c, &[], 1, &mut rng).unwrap();
        let b = exec
            .probability_of_one_compiled(&fused, &[], 1, &mut rng)
            .unwrap();
        assert!((a - b).abs() < 1e-12);
        // Noisy trajectories: identical RNG consumption (per-gate fallback),
        // so identically seeded runs agree bit-for-bit.
        let noisy = Executor::noisy(NoiseModel::depolarizing(0.02, 0.05, 0.0).unwrap())
            .with_trajectories(20);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let a = noisy.probability_of_one(&c, &[], 1, &mut r1).unwrap();
        let b = noisy
            .probability_of_one_compiled(&fused, &[], 1, &mut r2)
            .unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // Density matrix: exact agreement.
        let dm = Executor::noisy_density(NoiseModel::depolarizing(0.02, 0.05, 0.0).unwrap());
        let a = dm.probability_of_one(&c, &[], 1, &mut rng).unwrap();
        let b = dm
            .probability_of_one_compiled(&fused, &[], 1, &mut rng)
            .unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn compiled_sample_counts_sum_to_shots() {
        let mut rng = StdRng::seed_from_u64(12);
        let fused = crate::fusion::FusedCircuit::compile(&bell_circuit());
        let counts = Executor::ideal()
            .sample_counts_compiled(&fused, &[], 2000, &mut rng)
            .unwrap();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2000);
        for (outcome, count) in counts {
            assert!(outcome == 0 || outcome == 3);
            assert!((count as f64 / 2000.0 - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn density_method_matches_statevector_for_ideal_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).push(Gate::CRy {
            control: 1,
            target: 2,
            theta: 0.8,
        });
        let sv_exec = Executor::ideal();
        let dm_exec = Executor::noisy_density(NoiseModel::ideal());
        for q in 0..3 {
            let a = sv_exec.probability_of_one(&c, &[], q, &mut rng).unwrap();
            let b = dm_exec.probability_of_one(&c, &[], q, &mut rng).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
    }
}
