//! Opt-in kernel profiling counters (`QUCLASSI_PROFILE`).
//!
//! The serving stack needs to answer "what did the simulator actually do
//! for this traffic?" — how many fused-group invocations ran, how often
//! the multiply-free diagonal/permutation specialisations fired versus
//! full dense sweeps, and how many amplitudes those sweeps covered. This
//! module provides process-wide counters for exactly that, designed so
//! the **disabled path costs one relaxed atomic load and a predictable
//! branch per kernel invocation** — noise against the `O(2^n)` sweep the
//! kernel is about to perform.
//!
//! Profiling is off by default. It turns on when the `QUCLASSI_PROFILE`
//! environment variable is set to anything other than `0`/empty (checked
//! once, at first use), or programmatically via [`set_enabled`] (tests,
//! benches). Counters are global to the process: they aggregate across
//! every [`crate::state::StateVector`] in every thread, which is what a
//! serving process scraping its own metrics wants. Use [`snapshot`]
//! deltas to attribute work to a window, and [`reset`] only in
//! single-owner contexts (tests).
//!
//! What is counted:
//!
//! * **fused groups** — dense group-unitary applications issued by
//!   [`crate::fusion::FusedCircuit`] / [`crate::fusion::BoundFusedCircuit`]
//!   (static or bound dynamic groups);
//! * **dense sweeps** — full dense `2^k × 2^k` unitary applications (the
//!   kernels behind gate application and fused groups);
//! * **diagonal sweeps** — multiply-free phase-flip specialisations
//!   (Z, S, S†, T, T†, CZ);
//! * **permutation sweeps** — multiply-free amplitude-relabelling
//!   specialisations (X, SWAP, CNOT, CSWAP);
//! * **amplitudes touched** — the register dimension `2^n` accumulated
//!   per sweep: the number of amplitudes each sweep ranges over.

use crate::quclassi_sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::gate::Gate;

/// Tri-state cache of the `QUCLASSI_PROFILE` environment probe:
/// 0 = not probed yet, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

static FUSED_GROUPS: AtomicU64 = AtomicU64::new(0);
static DENSE_SWEEPS: AtomicU64 = AtomicU64::new(0);
static DIAGONAL_SWEEPS: AtomicU64 = AtomicU64::new(0);
static PERMUTATION_SWEEPS: AtomicU64 = AtomicU64::new(0);
static AMPLITUDES_TOUCHED: AtomicU64 = AtomicU64::new(0);

/// Whether kernel profiling is currently enabled.
///
/// The first call probes `QUCLASSI_PROFILE` (set and not `0` → enabled);
/// every later call is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => probe_env(),
    }
}

#[cold]
fn probe_env() -> bool {
    let on = std::env::var("QUCLASSI_PROFILE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces profiling on or off, overriding the environment probe. Intended
/// for tests and benchmarks; serving processes should use the
/// `QUCLASSI_PROFILE` environment variable.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Records one fused-group dense unitary invocation.
#[inline]
pub(crate) fn fused_group() {
    if enabled() {
        FUSED_GROUPS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one dense `2^k × 2^k` unitary sweep over `amplitudes` amplitudes.
#[inline]
pub(crate) fn dense_sweep(amplitudes: u64) {
    if enabled() {
        DENSE_SWEEPS.fetch_add(1, Ordering::Relaxed);
        AMPLITUDES_TOUCHED.fetch_add(amplitudes, Ordering::Relaxed);
    }
}

/// Records one multiply-free specialised sweep for `gate` over
/// `amplitudes` amplitudes, classifying it as diagonal or permutation.
#[inline]
pub(crate) fn specialized_sweep(gate: &Gate, amplitudes: u64) {
    if !enabled() {
        return;
    }
    let counter = match gate {
        // Identity applies no sweep at all.
        Gate::I(_) => return,
        Gate::X(_) | Gate::Swap(..) | Gate::Cnot { .. } | Gate::CSwap { .. } => &PERMUTATION_SWEEPS,
        _ => &DIAGONAL_SWEEPS,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    AMPLITUDES_TOUCHED.fetch_add(amplitudes, Ordering::Relaxed);
}

/// A point-in-time copy of the kernel profiling counters.
///
/// Counts are process-wide totals since start (or the last [`reset`]).
/// All zeros unless profiling was enabled while kernels ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Fused-group dense unitary invocations (static + bound dynamic).
    pub fused_groups: u64,
    /// Dense `2^k × 2^k` unitary sweeps.
    pub dense_sweeps: u64,
    /// Multiply-free diagonal sweeps (Z, S, S†, T, T†, CZ).
    pub diagonal_sweeps: u64,
    /// Multiply-free permutation sweeps (X, SWAP, CNOT, CSWAP).
    pub permutation_sweeps: u64,
    /// Amplitudes ranged over, accumulated across all sweeps.
    pub amplitudes_touched: u64,
}

impl SimProfile {
    /// Total sweeps of any kind.
    pub fn total_sweeps(&self) -> u64 {
        self.dense_sweeps + self.diagonal_sweeps + self.permutation_sweeps
    }
}

/// Reads the current counter values.
pub fn snapshot() -> SimProfile {
    SimProfile {
        fused_groups: FUSED_GROUPS.load(Ordering::Relaxed),
        dense_sweeps: DENSE_SWEEPS.load(Ordering::Relaxed),
        diagonal_sweeps: DIAGONAL_SWEEPS.load(Ordering::Relaxed),
        permutation_sweeps: PERMUTATION_SWEEPS.load(Ordering::Relaxed),
        amplitudes_touched: AMPLITUDES_TOUCHED.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters. Not atomic across counters — only meaningful when
/// no kernels are concurrently running (tests, controlled benchmarks).
pub fn reset() {
    FUSED_GROUPS.store(0, Ordering::Relaxed);
    DENSE_SWEEPS.store(0, Ordering::Relaxed);
    DIAGONAL_SWEEPS.store(0, Ordering::Relaxed);
    PERMUTATION_SWEEPS.store(0, Ordering::Relaxed);
    AMPLITUDES_TOUCHED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::fusion::FusedCircuit;
    use crate::state::StateVector;

    /// All profiling behaviour in one test: the counters are process-wide,
    /// so sub-cases run sequentially inside a single `#[test]` to avoid
    /// races with themselves (other suites in this binary leave profiling
    /// disabled, so they can only *add* counts, never remove them — every
    /// assertion below is on deltas with `>=`).
    #[test]
    fn profiling_counts_kernel_work_when_enabled() {
        // Disabled: kernels record nothing.
        set_enabled(false);
        let before = snapshot();
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate(&Gate::H(0)).unwrap();
        sv.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let after = snapshot();
        assert_eq!(before, after, "disabled profiling must not count");

        // Enabled: dense + specialised sweeps and amplitude accounting.
        set_enabled(true);
        assert!(enabled());
        let before = snapshot();
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate(&Gate::H(0)).unwrap(); // dense 1-qubit sweep
        sv.apply_gate(&Gate::Z(1)).unwrap(); // diagonal
        sv.apply_gate(&Gate::X(2)).unwrap(); // permutation
        sv.apply_gate(&Gate::I(0)).unwrap(); // no sweep
        let after = snapshot();
        assert!(after.dense_sweeps > before.dense_sweeps);
        assert!(after.diagonal_sweeps > before.diagonal_sweeps);
        assert!(after.permutation_sweeps > before.permutation_sweeps);
        // Each of the three sweeps ranges over all 2^3 amplitudes.
        assert!(after.amplitudes_touched >= before.amplitudes_touched + 3 * 8);
        assert!(after.total_sweeps() >= before.total_sweeps() + 3);

        // Fused execution records group invocations.
        let before = snapshot();
        let mut c = Circuit::new(2);
        c.h(0).ry_param(0, 0).ry_param(1, 1).cnot(0, 1);
        let fused = FusedCircuit::compile(&c);
        fused.execute(&[0.4, -0.9]).unwrap();
        let bound = fused.bind(&[0.4, -0.9]).unwrap();
        bound.execute();
        let after = snapshot();
        assert!(
            after.fused_groups >= before.fused_groups + 2,
            "fused + bound replay must each record group invocations"
        );

        set_enabled(false);
    }
}
