//! Intra-statevector thread budget: parallelism *within* a single circuit
//! execution.
//!
//! [`crate::batch::BatchExecutor`] parallelises *across* circuits — one job
//! per parameter set or sample. That leaves a single large circuit (the
//! 17-qubit MNIST SWAP test is the canonical case) running every amplitude
//! sweep on one thread. An [`IntraThreads`] budget lets the hot kernels in
//! [`crate::state::StateVector`] split each sweep into cache-block-sized
//! disjoint amplitude chunks and dispatch them over the vendored scoped
//! thread pool.
//!
//! The two budgets compose multiplicatively: a batch of `B` jobs on an
//! executor with `across` workers and `intra` threads per circuit uses up
//! to `across × intra` OS threads. Deployments size them with the
//! `QUCLASSI_THREADS` (across) and `QUCLASSI_INTRA_THREADS` (within) knobs.
//!
//! ## Determinism
//!
//! Intra-circuit parallelism never changes any answer:
//!
//! * gate kernels are elementwise or permutational per disjoint amplitude
//!   group, so splitting the sweep cannot reorder any amplitude's
//!   arithmetic;
//! * reductions (inner products, measurement probabilities) use a **fixed
//!   pairwise tree** whose shape depends only on the register size — never
//!   on the thread count — so partial sums combine in the same order
//!   whether they were computed by one thread or eight.
//!
//! Consequently results are **bit-identical for any intra thread count**
//! (determinism guarantee 5 in `docs/ARCHITECTURE.md`), pinned by the
//! `intra_equivalence` property suite.

use crate::error::SimError;
use threadpool::ThreadPool;

/// Below this register size, parallel dispatch costs more than the sweep
/// itself: a 2^14-amplitude sweep is a few tens of microseconds, the same
/// order as spawning scoped workers. Kernels on smaller registers always
/// run sequentially, whatever the configured thread count.
pub const DEFAULT_INTRA_THRESHOLD_QUBITS: usize = 14;

/// A within-circuit thread budget: how many workers a single statevector
/// sweep may fan out over, and the register size at which fanning out
/// starts to pay.
///
/// The default ([`IntraThreads::single_threaded`]) keeps every kernel on
/// the calling thread — intra-circuit parallelism is strictly opt-in, so
/// existing single-circuit latencies and the across-circuit budget of
/// [`crate::batch::BatchExecutor`] are unchanged unless a deployment asks
/// for it.
///
/// ```
/// use quclassi_sim::intra::IntraThreads;
///
/// let intra = IntraThreads::new(8);
/// assert_eq!(intra.threads(), 8);
/// // Small registers stay sequential regardless of the budget…
/// assert!(!intra.parallelizes(10));
/// // …large ones fan out.
/// assert!(intra.parallelizes(17));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntraThreads {
    pool: ThreadPool,
    threshold_qubits: usize,
}

impl Default for IntraThreads {
    fn default() -> Self {
        IntraThreads::single_threaded()
    }
}

impl IntraThreads {
    /// A budget of `threads` workers per kernel sweep, with the default
    /// qubit-count threshold.
    ///
    /// # Panics
    /// Panics if `threads` is zero (same contract as
    /// [`crate::batch::BatchExecutor::new`]).
    pub fn new(threads: usize) -> Self {
        IntraThreads {
            pool: ThreadPool::new(threads),
            threshold_qubits: DEFAULT_INTRA_THRESHOLD_QUBITS,
        }
    }

    /// The no-op budget: every kernel runs inline on the calling thread.
    pub fn single_threaded() -> Self {
        IntraThreads {
            pool: ThreadPool::single_threaded(),
            threshold_qubits: DEFAULT_INTRA_THRESHOLD_QUBITS,
        }
    }

    /// Replaces the qubit-count threshold below which kernels stay
    /// sequential. Mainly for tests (forcing the parallel code paths on
    /// tiny registers) and for tuning on unusual hardware.
    pub fn with_threshold_qubits(mut self, threshold_qubits: usize) -> Self {
        self.threshold_qubits = threshold_qubits;
        self
    }

    /// A budget sized from the `QUCLASSI_INTRA_THREADS` environment
    /// variable.
    ///
    /// Unset (or empty) means **one thread**: within-circuit parallelism is
    /// opt-in, unlike `QUCLASSI_THREADS` whose unset default is all cores —
    /// defaulting both to all cores would oversubscribe the machine by the
    /// square of its core count.
    ///
    /// # Errors
    /// A set-but-malformed or zero value is rejected with
    /// [`SimError::InvalidConfiguration`], exactly like `QUCLASSI_THREADS`:
    /// a typo in a deployment knob must fail startup, not silently serve
    /// with a default.
    pub fn from_env() -> Result<Self, SimError> {
        let raw = std::env::var("QUCLASSI_INTRA_THREADS").ok();
        Self::from_thread_spec(raw.as_deref())
    }

    /// The pure core of [`IntraThreads::from_env`]: builds a budget from an
    /// optional `QUCLASSI_INTRA_THREADS`-style specification. `None` and
    /// the empty string mean "unset — single-threaded"; anything else must
    /// parse as a positive integer.
    pub fn from_thread_spec(spec: Option<&str>) -> Result<Self, SimError> {
        match spec.map(str::trim).filter(|s| !s.is_empty()) {
            None => Ok(IntraThreads::single_threaded()),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(IntraThreads::new(n)),
                Ok(_) => Err(SimError::InvalidConfiguration(
                    "QUCLASSI_INTRA_THREADS must be a positive integer; \
                     0 threads cannot make progress (unset the variable \
                     for single-threaded kernels)"
                        .to_string(),
                )),
                Err(_) => Err(SimError::InvalidConfiguration(format!(
                    "QUCLASSI_INTRA_THREADS must be a positive integer, got '{raw}'"
                ))),
            },
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The register size (in qubits) at which kernels start fanning out.
    pub fn threshold_qubits(&self) -> usize {
        self.threshold_qubits
    }

    /// Whether a kernel on a `num_qubits`-qubit register should dispatch in
    /// parallel under this budget.
    pub fn parallelizes(&self, num_qubits: usize) -> bool {
        self.pool.threads() > 1 && num_qubits >= self.threshold_qubits
    }

    /// The scoped pool kernels dispatch over.
    pub(crate) fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_threaded_and_never_parallelizes() {
        let intra = IntraThreads::default();
        assert_eq!(intra.threads(), 1);
        assert!(!intra.parallelizes(26));
    }

    #[test]
    fn threshold_gates_parallel_dispatch() {
        let intra = IntraThreads::new(4);
        assert_eq!(intra.threshold_qubits(), DEFAULT_INTRA_THRESHOLD_QUBITS);
        assert!(!intra.parallelizes(DEFAULT_INTRA_THRESHOLD_QUBITS - 1));
        assert!(intra.parallelizes(DEFAULT_INTRA_THRESHOLD_QUBITS));
        let low = intra.with_threshold_qubits(2);
        assert!(low.parallelizes(2));
        assert!(!low.parallelizes(1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected_at_construction() {
        let _ = IntraThreads::new(0);
    }

    #[test]
    fn thread_spec_unset_means_single_threaded() {
        assert_eq!(IntraThreads::from_thread_spec(None).unwrap().threads(), 1);
        assert_eq!(
            IntraThreads::from_thread_spec(Some("")).unwrap().threads(),
            1
        );
        assert_eq!(
            IntraThreads::from_thread_spec(Some(" 6 "))
                .unwrap()
                .threads(),
            6
        );
    }

    #[test]
    fn thread_spec_rejects_zero_and_garbage_like_quclassi_threads() {
        for bad in ["0", "abc", "-3", "2.5", "4x"] {
            let err =
                IntraThreads::from_thread_spec(Some(bad)).expect_err("spec should be rejected");
            match err {
                SimError::InvalidConfiguration(msg) => {
                    assert!(msg.contains("QUCLASSI_INTRA_THREADS"), "{msg}")
                }
                other => panic!("unexpected error for {bad:?}: {other:?}"),
            }
        }
    }
}
