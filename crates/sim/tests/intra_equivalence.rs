//! Property-test net over the intra-statevector parallel kernels: for
//! random circuits, execution under any within-circuit thread budget must
//! be **bit-identical** to sequential execution — state amplitudes, fused
//! and bound replays, and measurement/fidelity reductions alike.
//!
//! The budgets under test force the parallel code paths onto small
//! registers by lowering the qubit-count threshold to 1, so every segment
//! partition shape (coupled qubits internal to segments, peeled above
//! them, and mixed) is exercised at proptest speed. A deterministic
//! 15-qubit anchor exercises the default threshold on a genuinely large
//! register.

use proptest::prelude::*;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::fusion::FusedCircuit;
use quclassi_sim::gate::Gate;
use quclassi_sim::intra::IntraThreads;
use quclassi_sim::state::StateVector;

/// Decodes one raw tuple into a gate on distinct qubits of an `n`-qubit
/// register (same generator as the fusion_equivalence suite — all 23
/// variants, so every specialised and dense kernel is hit).
fn gate_from_raw(n: usize, kind: usize, qa: usize, qb: usize, qc: usize, theta: f64) -> Gate {
    let a = qa % n;
    let b = (a + 1 + qb % (n - 1)) % n;
    let c = {
        let mut others: Vec<usize> = (0..n).filter(|&q| q != a && q != b).collect();
        if others.is_empty() {
            others.push((a + 1) % n);
        }
        others[qc % others.len()]
    };
    match kind % 23 {
        0 => Gate::I(a),
        1 => Gate::X(a),
        2 => Gate::Y(a),
        3 => Gate::Z(a),
        4 => Gate::H(a),
        5 => Gate::S(a),
        6 => Gate::Sdg(a),
        7 => Gate::T(a),
        8 => Gate::Tdg(a),
        9 => Gate::Rx(a, theta),
        10 => Gate::Ry(a, theta),
        11 => Gate::Rz(a, theta),
        12 => Gate::R(a, theta, theta * 0.7 - 1.0),
        13 => Gate::Cnot {
            control: a,
            target: b,
        },
        14 => Gate::Cz {
            control: a,
            target: b,
        },
        15 => Gate::Swap(a, b),
        16 => Gate::CRx {
            control: a,
            target: b,
            theta,
        },
        17 => Gate::CRy {
            control: a,
            target: b,
            theta,
        },
        18 => Gate::CRz {
            control: a,
            target: b,
            theta,
        },
        19 => Gate::Rxx(a, b, theta),
        20 => Gate::Ryy(a, b, theta),
        21 => Gate::Rzz(a, b, theta),
        _ => {
            if n >= 3 {
                Gate::CSwap {
                    control: a,
                    a: b,
                    b: c,
                }
            } else {
                Gate::Swap(a, b)
            }
        }
    }
}

type RawGate = (usize, usize, usize, usize, f64);

fn raw_gates(max_len: usize) -> impl Strategy<Value = Vec<RawGate>> {
    prop::collection::vec(
        (0usize..23, 0usize..64, 0usize..64, 0usize..64, -6.3f64..6.3),
        1..max_len,
    )
}

fn build_circuit(n: usize, raw: &[RawGate]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, qa, qb, qc, theta) in raw {
        c.push(gate_from_raw(n, kind, qa, qb, qc, theta));
    }
    c
}

/// A thread budget that forces the parallel kernels onto tiny registers.
fn forced(threads: usize) -> IntraThreads {
    IntraThreads::new(threads).with_threshold_qubits(1)
}

fn assert_bits_equal(par: &StateVector, seq: &StateVector, what: &str) {
    for (x, y) in par.to_amplitudes().iter().zip(seq.to_amplitudes().iter()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re {x:?} vs {y:?}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im {x:?} vs {y:?}");
    }
}

proptest! {
    /// Fused execution under 2- and 8-thread intra budgets reproduces the
    /// sequential fused execution to the last bit, for random circuits
    /// over 2–6 qubits covering every gate kernel.
    #[test]
    fn parallel_fused_execution_is_bit_identical(
        n in 2usize..=6,
        raw in raw_gates(40),
    ) {
        let circuit = build_circuit(n, &raw);
        let fused = FusedCircuit::compile(&circuit);
        let sequential = fused.execute(&[]).unwrap();
        for threads in [2usize, 8] {
            let state = fused.execute_with(&[], &forced(threads)).unwrap();
            assert_bits_equal(&state, &sequential, "fused execute");
        }
    }

    /// Bound replays — including the scratch-reusing zero-allocation path
    /// — are bit-identical across intra thread counts, and reusing a dirty
    /// scratch cannot leak state between executions.
    #[test]
    fn parallel_bound_replay_is_bit_identical(
        n in 2usize..=6,
        raw in raw_gates(24),
        params in prop::collection::vec(-3.2f64..3.2, 6),
    ) {
        let mut circuit = Circuit::new(n);
        let mut next_param = 0usize;
        for &(kind, qa, qb, qc, theta) in &raw {
            let gate = gate_from_raw(n, kind, qa, qb, qc, theta);
            if gate.angle().is_some() && next_param < params.len() {
                circuit.push_parametric(gate, next_param);
                next_param += 1;
            } else {
                circuit.push(gate);
            }
        }
        let fused = FusedCircuit::compile(&circuit);
        let bound = fused.bind(&params[..]).unwrap();
        let sequential = bound.execute();
        let mut scratch = StateVector::zero_state(n);
        for threads in [1usize, 2, 8] {
            let intra = forced(threads);
            assert_bits_equal(&bound.execute_with(&intra), &sequential, "bound execute");
            // Twice through the same scratch: the second replay starts from
            // the first's result and must still land on the same state.
            bound.execute_reusing(&mut scratch, &intra);
            assert_bits_equal(&scratch, &sequential, "bound execute_reusing (cold)");
            bound.execute_reusing(&mut scratch, &intra);
            assert_bits_equal(&scratch, &sequential, "bound execute_reusing (dirty)");
        }
    }

    /// Measurement and fidelity reductions are bit-identical for any
    /// thread count: the pairwise tree's shape depends only on the
    /// register size.
    #[test]
    fn parallel_reductions_are_bit_identical(
        n in 2usize..=6,
        raw_a in raw_gates(20),
        raw_b in raw_gates(20),
        qubit in 0usize..6,
    ) {
        let a = build_circuit(n, &raw_a).execute(&[]).unwrap();
        let b = build_circuit(n, &raw_b).execute(&[]).unwrap();
        let q = qubit % n;
        let p_seq = a.probability_of_one(q).unwrap();
        let f_seq = a.fidelity(&b).unwrap();
        let ip_seq = a.inner_product(&b).unwrap();
        for threads in [1usize, 2, 8] {
            let intra = forced(threads);
            assert_eq!(
                a.probability_of_one_with(q, &intra).unwrap().to_bits(),
                p_seq.to_bits()
            );
            assert_eq!(a.fidelity_with(&b, &intra).unwrap().to_bits(), f_seq.to_bits());
            let ip = a.inner_product_with(&b, &intra).unwrap();
            assert_eq!(ip.re.to_bits(), ip_seq.re.to_bits());
            assert_eq!(ip.im.to_bits(), ip_seq.im.to_bits());
        }
    }
}

/// A deterministic 15-qubit anchor through the *default* threshold (the
/// register is large enough that `IntraThreads::new(8)` genuinely fans
/// out): a layered circuit touching high, low and mixed qubit positions,
/// including CSWAPs spanning the register and a parametric remainder.
#[test]
fn large_register_execution_is_bit_identical_across_budgets() {
    let n = 15;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    // Rotations on every qubit, parametric on the top register half (the
    // shape of a compiled SWAP-test data register: parameters high).
    for q in 0..n {
        if q >= n / 2 {
            c.ry_param(q, q - n / 2);
        } else {
            c.ry(q, 0.21 + 0.13 * q as f64);
        }
    }
    // Permutations that couple low, high, and mixed positions.
    c.cswap(0, 1, n - 1);
    c.cswap(n - 1, 2, n - 2);
    c.push(Gate::Swap(n - 2, n - 3));
    c.push(Gate::Cz {
        control: 0,
        target: n - 1,
    });
    c.h(0);
    let params: Vec<f64> = (0..c.num_parameters())
        .map(|i| 0.4 - 0.07 * i as f64)
        .collect();
    let fused = FusedCircuit::compile(&c);
    let sequential = fused.execute(&params).unwrap();
    let p_seq = sequential.probability_of_one(0).unwrap();
    for threads in [2usize, 4, 8] {
        let intra = IntraThreads::new(threads);
        assert!(
            intra.parallelizes(n),
            "15 qubits must cross the default threshold"
        );
        let state = fused.execute_with(&params, &intra).unwrap();
        assert_bits_equal(&state, &sequential, "15-qubit fused execute");
        assert_eq!(
            state.probability_of_one_with(0, &intra).unwrap().to_bits(),
            p_seq.to_bits(),
            "15-qubit ancilla probability"
        );
    }
    // The bound replay agrees too (it shares the prelude but resolves the
    // parametric remainder at bind time).
    let bound = fused.bind(&params).unwrap();
    let mut scratch = StateVector::zero_state(n);
    for threads in [1usize, 8] {
        bound.execute_reusing(&mut scratch, &IntraThreads::new(threads));
        assert_bits_equal(&scratch, &sequential, "15-qubit bound replay");
    }
}

/// `QUCLASSI_INTRA_THREADS` obeys the same rejection contract as
/// `QUCLASSI_THREADS`: zero and unparsable values fail loudly.
#[test]
fn intra_thread_spec_rejection_matches_quclassi_threads_contract() {
    use quclassi_sim::batch::BatchExecutor;
    for bad in ["0", "eight", "-1", "3.5"] {
        assert!(
            IntraThreads::from_thread_spec(Some(bad)).is_err(),
            "intra spec {bad:?} must be rejected"
        );
        assert!(
            BatchExecutor::from_thread_specs(Some("2"), Some(bad), 0).is_err(),
            "batch intra spec {bad:?} must be rejected"
        );
        assert!(
            BatchExecutor::from_thread_spec(Some(bad), 0).is_err(),
            "across spec {bad:?} must be rejected"
        );
    }
    let b = BatchExecutor::from_thread_specs(Some("3"), Some("4"), 9).unwrap();
    assert_eq!(b.threads(), 3);
    assert_eq!(b.intra().threads(), 4);
    assert_eq!(b.root_seed(), 9);
    // Unset intra means within-circuit parallelism off.
    let b = BatchExecutor::from_thread_specs(Some("3"), None, 0).unwrap();
    assert_eq!(b.intra().threads(), 1);
}
