//! Asserts the zero-allocation contract of the scratch-reusing replay
//! path: once a [`BoundFusedCircuit`] and its scratch statevector exist,
//! steady-state sequential gate application — prelude copy, every dense
//! group, every diagonal/permutation specialisation, and the measurement
//! reduction — performs **no heap allocation at all**.
//!
//! The whole test binary runs under a counting wrapper around the system
//! allocator (test binaries each own their `#[global_allocator]`), so the
//! assertion measures real allocator traffic, not a proxy.

use quclassi_sim::circuit::Circuit;
use quclassi_sim::fusion::FusedCircuit;
use quclassi_sim::gemm::StateMatrix;
use quclassi_sim::intra::IntraThreads;
use quclassi_sim::state::StateVector;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY-FREE NOTE: implementing `GlobalAlloc` requires `unsafe fn`s by
// signature; the implementation only delegates to `System` and bumps a
// counter, so the crate-level `forbid(unsafe_code)` (which this test
// binary does not inherit) is not weakened in library code.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A circuit exercising every steady-state kernel class: fused dense
/// groups (1-, 2- and 3-qubit), lone diagonal and permutation
/// specialisations, and a parametric remainder that forces dynamic-group
/// binding at `bind` time (not at replay time).
fn replay_workload(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.ry(q, 0.2 + 0.11 * q as f64).rz(q, 0.4 - 0.07 * q as f64);
    }
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    c.cswap(0, 1, n - 1);
    c.push(quclassi_sim::gate::Gate::Swap(1, n - 2));
    c.push(quclassi_sim::gate::Gate::Cz {
        control: 0,
        target: n - 1,
    });
    c.ry_param(n / 2, 0).rz_param(n / 2, 1);
    c.h(0);
    c
}

#[test]
fn bound_replay_with_reused_scratch_performs_zero_heap_allocation() {
    let n = 10;
    let circuit = replay_workload(n);
    let fused = FusedCircuit::compile(&circuit);
    let bound = fused.bind(&[0.83, -1.21]).unwrap();
    let intra = IntraThreads::single_threaded();

    let mut scratch = StateVector::zero_state(n);
    // Warm-up: sizes the scratch buffer and faults in whatever lazy
    // machinery the first execution touches.
    bound.execute_reusing(&mut scratch, &intra);
    let expected = scratch.clone();
    let p_expected = scratch.probability_of_one(0).unwrap();

    let before = allocations();
    for _ in 0..100 {
        bound.execute_reusing(&mut scratch, &intra);
        let p = scratch.probability_of_one(0).unwrap();
        assert_eq!(p.to_bits(), p_expected.to_bits());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state bound replay must not touch the heap"
    );
    assert_eq!(
        scratch, expected,
        "replays must keep producing the same state"
    );
}

#[test]
fn gemm_fidelity_sweep_is_allocation_free_in_steady_state() {
    // The GEMM-shaped batched-inference inner loop: replay a bound circuit
    // into a reused scratch register, then sweep the scratch against a
    // packed class matrix. Once the matrix, scratch and output row exist,
    // the whole loop must never touch the heap.
    let n = 10;
    let circuit = replay_workload(n);
    let fused = FusedCircuit::compile(&circuit);
    let intra = IntraThreads::single_threaded();
    let classes: Vec<StateVector> = [0.31, -0.87, 1.62]
        .iter()
        .map(|&p| {
            let bound = fused.bind(&[p, 0.5 - p]).unwrap();
            bound.execute()
        })
        .collect();
    let matrix = StateMatrix::pack(&classes).unwrap();
    let bound = fused.bind(&[0.83, -1.21]).unwrap();

    let mut scratch = StateVector::zero_state(n);
    let mut fidelities = vec![0.0f64; matrix.rows()];
    // Warm-up, and the reference row the steady-state sweeps must keep
    // reproducing.
    bound.execute_reusing(&mut scratch, &intra);
    matrix
        .fidelities_into_with(&scratch, &intra, &mut fidelities)
        .unwrap();
    let expected: Vec<u64> = fidelities.iter().map(|f| f.to_bits()).collect();

    let before = allocations();
    for _ in 0..100 {
        bound.execute_reusing(&mut scratch, &intra);
        matrix
            .fidelities_into_with(&scratch, &intra, &mut fidelities)
            .unwrap();
        for (f, &bits) in fidelities.iter().zip(expected.iter()) {
            assert_eq!(f.to_bits(), bits);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state GEMM fidelity sweeps must not touch the heap"
    );
}

#[test]
fn fused_execute_reusing_amortizes_to_the_dynamic_rebuild_only() {
    // The unbound path must rebuild parametric group matrices per
    // execution (that is its contract), but with a reused scratch the
    // per-execution allocation count is a small constant — the constituent
    // gates' matrix constructions — not O(register) or O(program).
    let n = 10;
    let circuit = replay_workload(n);
    let fused = FusedCircuit::compile(&circuit);
    let intra = IntraThreads::single_threaded();
    let params = [0.83, -1.21];

    let mut scratch = StateVector::zero_state(n);
    fused
        .execute_reusing(&params, &mut scratch, &intra)
        .unwrap();

    let before = allocations();
    for _ in 0..10 {
        fused
            .execute_reusing(&params, &mut scratch, &intra)
            .unwrap();
    }
    let per_execution = (allocations() - before) / 10;
    assert!(
        per_execution <= 16,
        "unbound replay should allocate only small per-bind gate matrices, \
         got {per_execution} allocations per execution"
    );
}
