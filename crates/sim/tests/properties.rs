//! Property-based tests of the simulator's core invariants.

use proptest::prelude::*;
use quclassi_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A strategy producing an arbitrary gate on a register of `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = 0..n;
    let q3 = 0..n;
    let angle = -6.3f64..6.3;
    (q, q2, q3, angle, 0..10u8).prop_map(move |(a, b, c, theta, kind)| {
        let b = if b == a { (a + 1) % n } else { b };
        let mut c = c;
        while c == a || c == b {
            c = (c + 1) % n;
        }
        match kind {
            0 => Gate::H(a),
            1 => Gate::X(a),
            2 => Gate::Ry(a, theta),
            3 => Gate::Rz(a, theta),
            4 => Gate::Rx(a, theta),
            5 => Gate::Cnot {
                control: a,
                target: b,
            },
            6 => Gate::CRy {
                control: a,
                target: b,
                theta,
            },
            7 => Gate::CRz {
                control: a,
                target: b,
                theta,
            },
            8 => Gate::Rzz(a, b, theta),
            _ => Gate::CSwap { control: c, a, b },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of gates preserves the norm of the state.
    #[test]
    fn random_circuits_preserve_norm(gates in prop::collection::vec(arb_gate(4), 1..30)) {
        let mut sv = StateVector::zero_state(4);
        sv.apply_gates(&gates).unwrap();
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        let probs = sv.probabilities();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| p >= -1e-12));
    }

    /// Applying a gate then its dagger is the identity.
    #[test]
    fn gate_dagger_inverts(gates in prop::collection::vec(arb_gate(3), 1..15)) {
        let mut sv = StateVector::zero_state(3);
        // Prepare some non-trivial state first.
        sv.apply_gates(&[Gate::H(0), Gate::Ry(1, 0.4), Gate::Cnot { control: 0, target: 2 }]).unwrap();
        let reference = sv.clone();
        sv.apply_gates(&gates).unwrap();
        let inverse: Vec<Gate> = gates.iter().rev().map(Gate::dagger).collect();
        sv.apply_gates(&inverse).unwrap();
        prop_assert!((sv.fidelity(&reference).unwrap() - 1.0).abs() < 1e-7);
    }

    /// Gate matrices stay unitary for arbitrary angles.
    #[test]
    fn matrices_are_unitary(gate in arb_gate(3)) {
        prop_assert!(gate.matrix().is_unitary(1e-9), "{:?}", gate);
    }

    /// The decomposition of any gate into the native basis implements the
    /// same unitary (checked column by column on basis states).
    #[test]
    fn decomposition_preserves_semantics(gate in arb_gate(3)) {
        let decomposed = quclassi_sim::transpile::decompose_gate(&gate);
        let dim = 1 << 3;
        for basis in 0..dim {
            let mut a = StateVector::basis_state(3, basis).unwrap();
            let mut b = StateVector::basis_state(3, basis).unwrap();
            a.apply_gate(&gate).unwrap();
            b.apply_gates(&decomposed).unwrap();
            prop_assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-7);
        }
    }

    /// Density-matrix evolution agrees with state-vector evolution for pure
    /// (noise-free) circuits.
    #[test]
    fn density_matches_statevector(gates in prop::collection::vec(arb_gate(3), 1..12)) {
        let mut sv = StateVector::zero_state(3);
        sv.apply_gates(&gates).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_gates(&gates).unwrap();
        prop_assert!((rho.fidelity_with_pure(&sv).unwrap() - 1.0).abs() < 1e-7);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-7);
    }

    /// Noise channels keep the density matrix a valid state (unit trace,
    /// purity in (0, 1]).
    #[test]
    fn channels_keep_states_physical(p in 0.0f64..1.0, gamma in 0.0f64..1.0) {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(&Gate::H(0)).unwrap();
        rho.apply_gate(&Gate::Cnot { control: 0, target: 1 }).unwrap();
        rho.apply_channel(0, &NoiseChannel::Depolarizing(p)).unwrap();
        rho.apply_channel(1, &NoiseChannel::AmplitudeDamping(gamma)).unwrap();
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        let purity = rho.purity();
        prop_assert!(purity > 0.0 && purity <= 1.0 + 1e-9);
        for q in 0..2 {
            let p1 = rho.probability_of_one(q).unwrap();
            prop_assert!((0.0..=1.0).contains(&p1));
        }
    }

    /// Sampling frequencies converge to the exact single-qubit probability.
    #[test]
    fn sampling_matches_probability(x in 0.02f64..0.98) {
        let theta = 2.0 * x.sqrt().asin();
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::Ry(0, theta)).unwrap();
        let mut rng = StdRng::seed_from_u64((x * 1e6) as u64);
        let ones = sv.sample_qubit(0, 8000, &mut rng).unwrap();
        let frac = ones as f64 / 8000.0;
        prop_assert!((frac - x).abs() < 0.05, "x = {x}, sampled {frac}");
    }

    /// Every single gate variant in the gate set preserves the state norm,
    /// at arbitrary angles, applied to a non-trivial state.
    #[test]
    fn every_gate_variant_preserves_norm(theta in -6.3f64..6.3, phi in -6.3f64..6.3) {
        // Exhaustive no-op match: adding a Gate variant fails to compile
        // here until it is added to `all_gates` below.
        let _enforce_coverage = |g: &Gate| match g {
            Gate::I(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) | Gate::H(_)
            | Gate::S(_) | Gate::Sdg(_) | Gate::T(_) | Gate::Tdg(_)
            | Gate::Rx(..) | Gate::Ry(..) | Gate::Rz(..) | Gate::R(..)
            | Gate::Cnot { .. } | Gate::Cz { .. } | Gate::Swap(..)
            | Gate::CSwap { .. } | Gate::CRx { .. } | Gate::CRy { .. }
            | Gate::CRz { .. } | Gate::Rxx(..) | Gate::Ryy(..) | Gate::Rzz(..) => (),
        };
        let all_gates = [
            Gate::I(0),
            Gate::X(0),
            Gate::Y(1),
            Gate::Z(2),
            Gate::H(0),
            Gate::S(1),
            Gate::Sdg(2),
            Gate::T(0),
            Gate::Tdg(1),
            Gate::Rx(0, theta),
            Gate::Ry(1, theta),
            Gate::Rz(2, theta),
            Gate::R(0, theta, phi),
            Gate::Cnot { control: 0, target: 1 },
            Gate::Cz { control: 1, target: 2 },
            Gate::Swap(0, 2),
            Gate::CSwap { control: 0, a: 1, b: 2 },
            Gate::CRx { control: 0, target: 1, theta },
            Gate::CRy { control: 1, target: 2, theta },
            Gate::CRz { control: 2, target: 0, theta },
            Gate::Rxx(0, 1, theta),
            Gate::Ryy(1, 2, theta),
            Gate::Rzz(0, 2, theta),
        ];
        for gate in &all_gates {
            let mut sv = StateVector::zero_state(3);
            // Non-trivial entangled start state.
            sv.apply_gates(&[
                Gate::H(0),
                Gate::Ry(1, 0.7),
                Gate::Cnot { control: 0, target: 2 },
            ])
            .unwrap();
            sv.apply_gate(gate).unwrap();
            prop_assert!(
                (sv.norm_sqr() - 1.0).abs() < 1e-12,
                "{gate:?} broke normalisation: {}",
                sv.norm_sqr()
            );
        }
    }

    /// A SWAP test between two arbitrary single-qubit states yields a
    /// fidelity estimate in [0, 1] that matches the analytic overlap.
    #[test]
    fn swap_test_fidelity_in_unit_interval(
        alpha in -6.3f64..6.3,
        beta in -6.3f64..6.3,
        phase_a in -6.3f64..6.3,
        phase_b in -6.3f64..6.3,
    ) {
        // Ancilla is qubit 2; the two compared states live on qubits 0 and 1.
        let mut circuit = Circuit::new(3);
        circuit.ry(0, alpha).rz(0, phase_a).ry(1, beta).rz(1, phase_b);
        circuit.h(2).cswap(2, 0, 1).h(2);
        let mut rng = StdRng::seed_from_u64(99);
        let p1 = Executor::ideal()
            .probability_of_one(&circuit, &[], 2, &mut rng)
            .unwrap();
        // Section 3.3: P(ancilla = 1) = (1 - F) / 2, so F = 1 - 2 P(1).
        let fidelity = 1.0 - 2.0 * p1;
        prop_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&fidelity),
            "SWAP-test fidelity {fidelity} outside [0, 1]"
        );
        // Cross-check against the analytic overlap of the two states.
        let mut sa = StateVector::zero_state(1);
        sa.apply_gates(&[Gate::Ry(0, alpha), Gate::Rz(0, phase_a)]).unwrap();
        let mut sb = StateVector::zero_state(1);
        sb.apply_gates(&[Gate::Ry(0, beta), Gate::Rz(0, phase_b)]).unwrap();
        let analytic = sa.fidelity(&sb).unwrap();
        prop_assert!(
            (fidelity - analytic).abs() < 1e-9,
            "SWAP test {fidelity} vs analytic {analytic}"
        );
    }

    /// Every Kraus channel at every strength keeps the density matrix a
    /// valid state: unit trace, Hermitian-positive probabilities.
    #[test]
    fn kraus_channels_preserve_trace(p in 0.0f64..=1.0) {
        let channels = [
            NoiseChannel::Depolarizing(p),
            NoiseChannel::BitFlip(p),
            NoiseChannel::PhaseFlip(p),
            NoiseChannel::AmplitudeDamping(p),
            NoiseChannel::PhaseDamping(p),
        ];
        for channel in &channels {
            let mut rho = DensityMatrix::zero_state(2);
            rho.apply_gate(&Gate::H(0)).unwrap();
            rho.apply_gate(&Gate::Cnot { control: 0, target: 1 }).unwrap();
            rho.apply_channel(0, channel).unwrap();
            prop_assert!(
                (rho.trace() - 1.0).abs() < 1e-9,
                "{channel:?} broke the trace: {}",
                rho.trace()
            );
            for q in 0..2 {
                let p1 = rho.probability_of_one(q).unwrap();
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p1));
            }
        }
    }

    /// Routing onto a linear chain never loses gates: the routed circuit has
    /// at least as many CNOTs as the logical one and the layout is a
    /// permutation.
    #[test]
    fn routing_is_conservative(gates in prop::collection::vec(arb_gate(4), 1..10)) {
        let native = quclassi_sim::transpile::decompose_all(&gates);
        let coupling = CouplingMap::linear(4);
        let report = quclassi_sim::transpile::route(&native, &coupling).unwrap();
        let logical_cnots = quclassi_sim::transpile::count_cnots(&native);
        prop_assert!(report.cnot_count >= logical_cnots);
        prop_assert_eq!(report.cnot_count, logical_cnots + 3 * report.swaps_inserted);
        let mut layout = report.layout.clone();
        layout.sort_unstable();
        prop_assert_eq!(layout, (0..4).collect::<Vec<_>>());
    }
}
