//! Property-test net over the fusion hot path: for random circuits, fused
//! execution must be indistinguishable (to 1e-10) from gate-by-gate
//! execution, and must preserve the state norm.
//!
//! Case count: `ProptestConfig::default()` honours the `PROPTEST_CASES`
//! environment variable (CI pins it; the local default is 64 cases per
//! property, i.e. ≥ 64 random circuits per suite run).

use proptest::prelude::*;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::fusion::{FusedCircuit, MAX_FUSED_QUBITS};
use quclassi_sim::gate::Gate;
use quclassi_sim::state::StateVector;

const TOL: f64 = 1e-10;

/// Decodes one raw tuple into a gate on distinct qubits of an `n`-qubit
/// register. Covers every `Gate` variant (23 kinds).
fn gate_from_raw(n: usize, kind: usize, qa: usize, qb: usize, qc: usize, theta: f64) -> Gate {
    let a = qa % n;
    let b = (a + 1 + qb % (n - 1)) % n; // distinct from a
                                        // distinct from both a and b (needs n >= 3; callers gate on arity).
    let c = {
        let mut others: Vec<usize> = (0..n).filter(|&q| q != a && q != b).collect();
        if others.is_empty() {
            others.push((a + 1) % n);
        }
        others[qc % others.len()]
    };
    match kind % 23 {
        0 => Gate::I(a),
        1 => Gate::X(a),
        2 => Gate::Y(a),
        3 => Gate::Z(a),
        4 => Gate::H(a),
        5 => Gate::S(a),
        6 => Gate::Sdg(a),
        7 => Gate::T(a),
        8 => Gate::Tdg(a),
        9 => Gate::Rx(a, theta),
        10 => Gate::Ry(a, theta),
        11 => Gate::Rz(a, theta),
        12 => Gate::R(a, theta, theta * 0.7 - 1.0),
        13 => Gate::Cnot {
            control: a,
            target: b,
        },
        14 => Gate::Cz {
            control: a,
            target: b,
        },
        15 => Gate::Swap(a, b),
        16 => Gate::CRx {
            control: a,
            target: b,
            theta,
        },
        17 => Gate::CRy {
            control: a,
            target: b,
            theta,
        },
        18 => Gate::CRz {
            control: a,
            target: b,
            theta,
        },
        19 => Gate::Rxx(a, b, theta),
        20 => Gate::Ryy(a, b, theta),
        21 => Gate::Rzz(a, b, theta),
        _ => {
            if n >= 3 {
                Gate::CSwap {
                    control: a,
                    a: b,
                    b: c,
                }
            } else {
                Gate::Swap(a, b)
            }
        }
    }
}

type RawGate = (usize, usize, usize, usize, f64);

fn raw_gates(max_len: usize) -> impl Strategy<Value = Vec<RawGate>> {
    prop::collection::vec(
        (0usize..23, 0usize..64, 0usize..64, 0usize..64, -6.3f64..6.3),
        1..max_len,
    )
}

fn build_circuit(n: usize, raw: &[RawGate]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, qa, qb, qc, theta) in raw {
        c.push(gate_from_raw(n, kind, qa, qb, qc, theta));
    }
    c
}

fn assert_states_close(fused: &StateVector, plain: &StateVector, tol: f64) {
    for (x, y) in fused
        .to_amplitudes()
        .iter()
        .zip(plain.to_amplitudes().iter())
    {
        assert!(
            x.approx_eq(*y, tol),
            "fused amplitude {x:?} differs from unfused {y:?}"
        );
    }
}

proptest! {
    /// Fused and unfused execution agree amplitude-by-amplitude within
    /// 1e-10 for random fixed circuits over 2–6 qubits, and both preserve
    /// the norm.
    #[test]
    fn fused_execution_is_equivalent_to_unfused(
        n in 2usize..=6,
        raw in raw_gates(40),
    ) {
        let circuit = build_circuit(n, &raw);
        let fused = FusedCircuit::compile(&circuit);
        prop_assert!(fused.num_fused_ops() <= circuit.gate_count());
        prop_assert!(fused.max_group_span() <= MAX_FUSED_QUBITS);
        let plain = circuit.execute(&[]).unwrap();
        let state = fused.execute(&[]).unwrap();
        prop_assert!((state.norm_sqr() - 1.0).abs() < TOL, "norm {}", state.norm_sqr());
        for (x, y) in state.to_amplitudes().iter().zip(plain.to_amplitudes().iter()) {
            prop_assert!(x.approx_eq(*y, TOL), "fused {:?} vs unfused {:?}", x, y);
        }
    }

    /// Same equivalence with symbolic parameters bound at execute time:
    /// rotation gates are made parametric and re-bound against two
    /// different parameter vectors.
    #[test]
    fn fused_parametric_binding_is_equivalent(
        n in 2usize..=5,
        raw in raw_gates(24),
        params in prop::collection::vec(-3.2f64..3.2, 8),
    ) {
        let mut circuit = Circuit::new(n);
        let mut next_param = 0usize;
        for &(kind, qa, qb, qc, theta) in &raw {
            let gate = gate_from_raw(n, kind, qa, qb, qc, theta);
            if gate.angle().is_some() && next_param < params.len() {
                circuit.push_parametric(gate, next_param);
                next_param += 1;
            } else {
                circuit.push(gate);
            }
        }
        let fused = FusedCircuit::compile(&circuit);
        // Re-bind the same compiled circuit twice to catch state leaking
        // between binds.
        for scale in [1.0f64, -0.5] {
            let bound: Vec<f64> = params.iter().map(|p| p * scale).collect();
            let plain = circuit.execute(&bound).unwrap();
            let state = fused.execute(&bound).unwrap();
            prop_assert!((state.norm_sqr() - 1.0).abs() < TOL);
            for (x, y) in state.to_amplitudes().iter().zip(plain.to_amplitudes().iter()) {
                prop_assert!(x.approx_eq(*y, TOL), "fused {:?} vs unfused {:?}", x, y);
            }
        }
    }

    /// Applying a fused circuit to an arbitrary prepared state (not just
    /// |0…0⟩) matches unfused application on the same state.
    #[test]
    fn fused_execute_into_matches_on_prepared_states(
        n in 2usize..=5,
        prep in raw_gates(10),
        raw in raw_gates(20),
    ) {
        let mut start = StateVector::zero_state(n);
        build_circuit(n, &prep).execute_into(&mut start, &[]).unwrap();
        let circuit = build_circuit(n, &raw);
        let fused = FusedCircuit::compile(&circuit);
        let mut a = start.clone();
        let mut b = start;
        circuit.execute_into(&mut a, &[]).unwrap();
        fused.execute_into(&mut b, &[]).unwrap();
        prop_assert!((b.norm_sqr() - 1.0).abs() < TOL);
        for (x, y) in b.to_amplitudes().iter().zip(a.to_amplitudes().iter()) {
            prop_assert!(x.approx_eq(*y, TOL), "fused {:?} vs unfused {:?}", x, y);
        }
    }
}

#[test]
fn deep_circuit_equivalence_smoke() {
    // A deterministic deep circuit (240 gates, all variants) as a fixed
    // anchor alongside the random suites.
    let n = 6;
    let mut c = Circuit::new(n);
    for layer in 0..10 {
        for k in 0..23 {
            c.push(gate_from_raw(
                n,
                k,
                layer + k,
                2 * layer + k,
                3 * layer + 1,
                0.1 * (layer as f64 + 1.0) * (k as f64 - 11.0),
            ));
        }
    }
    let fused = FusedCircuit::compile(&c);
    // Dense runs fuse; diagonal/permutation gates deliberately stay on
    // their specialised multiply-free paths (fusing them would *add*
    // arithmetic), so the instruction count only shrinks moderately here —
    // this anchor is about exactness on a deep all-variant circuit.
    assert!(fused.num_fused_ops() < c.gate_count(), "fusion too weak");
    let plain = c.execute(&[]).unwrap();
    let state = fused.execute(&[]).unwrap();
    assert!((state.norm_sqr() - 1.0).abs() < TOL);
    assert_states_close(&state, &plain, TOL);
}
