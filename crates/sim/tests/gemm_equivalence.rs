//! Equivalence net over the GEMM-shaped batched fidelity path: packing
//! states into a [`StateMatrix`] and sweeping the matrix must agree with
//! the per-pair [`StateVector::fidelity`] reduction.
//!
//! The documented contract is agreement within `1e-12`; the implementation
//! today is **bit-identical** (every matrix entry reuses the same fixed
//! pairwise reduction tree), and this suite pins both: the tolerance
//! ceiling as the forward-compatible contract, bit equality as the current
//! behaviour — including across 1/2/8 intra thread budgets.

use proptest::prelude::*;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::gemm::StateMatrix;
use quclassi_sim::intra::IntraThreads;
use quclassi_sim::state::StateVector;

/// The documented GEMM agreement contract (see `crates/sim/src/gemm.rs`).
const GEMM_TOL: f64 = 1e-12;

/// A deterministic but well-mixed `n`-qubit state parameterised by `seed`.
fn mixed_state(n: usize, seed: u64) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
        c.ry(q, 0.31 + 0.17 * ((q as u64 + seed) % 13) as f64);
        c.rz(q, -0.45 + 0.23 * ((q as u64 * seed + 1) % 11) as f64);
    }
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    c.execute(&[]).unwrap()
}

fn assert_fidelity_rows_match(matrix: &StateMatrix, states: &[StateVector], probe: &StateVector) {
    let mut out = vec![0.0f64; states.len()];
    matrix.fidelities_into(probe, &mut out).unwrap();
    for (state, &gemm) in states.iter().zip(out.iter()) {
        let pair = state.fidelity(probe).unwrap();
        // The forward-compatible contract…
        assert!(
            (gemm - pair).abs() <= GEMM_TOL,
            "GEMM fidelity {gemm} vs per-pair {pair} exceeds {GEMM_TOL}"
        );
        // …and the current bit-exactness.
        assert_eq!(gemm.to_bits(), pair.to_bits(), "GEMM row not bit-identical");
    }
    // The threaded sweep is bit-identical to the sequential sweep for any
    // intra budget, including on registers below the default threshold
    // (forced via a 1-qubit threshold).
    for threads in [1usize, 2, 8] {
        let intra = IntraThreads::new(threads).with_threshold_qubits(1);
        let mut threaded = vec![0.0f64; states.len()];
        matrix
            .fidelities_into_with(probe, &intra, &mut threaded)
            .unwrap();
        for (&a, &b) in threaded.iter().zip(out.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{threads}-thread GEMM sweep diverged from sequential"
            );
        }
    }
}

proptest! {
    /// Random small registers (2–6 qubits — every row is a single
    /// reduction leaf): GEMM rows vs per-pair fidelities, sequential and
    /// threaded.
    #[test]
    fn gemm_rows_match_per_pair_fidelity(
        n in 2usize..=6,
        seeds in prop::collection::vec(1u64..1000, 1..6),
        probe_seed in 1000u64..2000,
    ) {
        let states: Vec<StateVector> = seeds.iter().map(|&s| mixed_state(n, s)).collect();
        let probe = mixed_state(n, probe_seed);
        let matrix = StateMatrix::pack(&states).unwrap();
        assert_fidelity_rows_match(&matrix, &states, &probe);
    }

    /// The full samples × classes fidelity matrix agrees entry-by-entry
    /// with the per-pair path, bit for bit.
    #[test]
    fn gemm_matrix_matches_per_pair_fidelity(
        n in 2usize..=6,
        sample_seeds in prop::collection::vec(1u64..500, 1..5),
        class_seeds in prop::collection::vec(500u64..900, 1..4),
    ) {
        let samples: Vec<StateVector> =
            sample_seeds.iter().map(|&s| mixed_state(n, s)).collect();
        let classes: Vec<StateVector> =
            class_seeds.iter().map(|&s| mixed_state(n, s)).collect();
        let sm = StateMatrix::pack(&samples).unwrap();
        let cm = StateMatrix::pack(&classes).unwrap();
        let mut out = vec![0.0f64; samples.len() * classes.len()];
        sm.fidelity_matrix_into(&cm, &mut out).unwrap();
        for (s, sample) in samples.iter().enumerate() {
            for (c, class) in classes.iter().enumerate() {
                let pair = class.fidelity(sample).unwrap();
                let gemm = out[s * classes.len() + c];
                prop_assert!((gemm - pair).abs() <= GEMM_TOL);
                prop_assert_eq!(gemm.to_bits(), pair.to_bits());
            }
        }
    }
}

/// A deterministic 13-qubit anchor: each row spans two reduction leaves
/// (dim 8192 > `REDUCTION_CHUNK` = 4096), so the threaded sweep genuinely
/// fans leaf work out across rows, and the leaf/combine split itself is
/// exercised on the sequential path too.
#[test]
fn multi_leaf_rows_are_bit_identical_across_budgets() {
    let n = 13;
    let states: Vec<StateVector> = (1..4).map(|s| mixed_state(n, s)).collect();
    let probe = mixed_state(n, 77);
    let matrix = StateMatrix::pack(&states).unwrap();
    assert_eq!(matrix.dim(), 1 << n);
    assert_fidelity_rows_match(&matrix, &states, &probe);
}

/// Packing order is row order: permuting the input permutes the output.
#[test]
fn row_order_follows_pack_order() {
    let a = mixed_state(4, 3);
    let b = mixed_state(4, 8);
    let probe = mixed_state(4, 21);
    let fwd = StateMatrix::pack(&[a.clone(), b.clone()]).unwrap();
    let rev = StateMatrix::pack(&[b, a]).unwrap();
    let (mut out_f, mut out_r) = (vec![0.0; 2], vec![0.0; 2]);
    fwd.fidelities_into(&probe, &mut out_f).unwrap();
    rev.fidelities_into(&probe, &mut out_r).unwrap();
    assert_eq!(out_f[0].to_bits(), out_r[1].to_bits());
    assert_eq!(out_f[1].to_bits(), out_r[0].to_bits());
}
