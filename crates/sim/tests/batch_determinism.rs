//! Determinism and shot-statistics regression tests for the batch execution
//! engine: results must be bit-identical across thread counts, and
//! shot-based estimates must be statistically faithful.

use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::circuit::Circuit;
use quclassi_sim::executor::Executor;
use quclassi_sim::fusion::FusedCircuit;
use quclassi_sim::gate::Gate;
use quclassi_sim::noise::NoiseModel;

/// A 3-qubit parametric circuit with entanglement: RY layer + CNOT chain.
fn parametric_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.ry_param(0, 0).ry_param(1, 1).ry_param(2, 2);
    c.cnot(0, 1).cnot(1, 2);
    c.rz_param(0, 3);
    c
}

fn param_grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            vec![
                0.1 + 0.37 * i as f64,
                1.9 - 0.21 * i as f64,
                -0.6 + 0.11 * i as f64,
                0.05 * i as f64,
            ]
        })
        .collect()
}

#[test]
fn probabilities_are_bit_identical_across_1_2_and_8_threads() {
    let fused = FusedCircuit::compile(&parametric_circuit());
    let sets = param_grid(24);
    // Exact, shot-limited, and noisy configurations all must be invariant.
    let configs = vec![
        Executor::ideal(),
        Executor::ideal().with_shots(Some(500)),
        Executor::noisy(NoiseModel::depolarizing(0.01, 0.02, 0.01).unwrap()).with_trajectories(8),
    ];
    for exec in configs {
        let run = |threads: usize| -> Vec<u64> {
            BatchExecutor::new(threads, 0)
                .probabilities_of_one(&exec, &fused, &sets, 2, 77)
                .unwrap()
                .into_iter()
                .map(f64::to_bits)
                .collect()
        };
        let one = run(1);
        assert_eq!(one, run(2), "2 threads diverged from 1");
        assert_eq!(one, run(8), "8 threads diverged from 1");
    }
}

#[test]
fn per_job_streams_depend_on_index_and_base_seed_only() {
    use rand::Rng;
    let batch = BatchExecutor::new(4, 123);
    // Jobs draw different amounts of randomness; later jobs must be
    // unaffected (no shared stream).
    let draws: Vec<Vec<u64>> = batch.run(vec![1usize, 5, 2, 7, 3], |_, n, rng| {
        (0..n).map(|_| rng.gen::<u64>()).collect()
    });
    // Re-run with different draw counts for earlier jobs: job 4's stream
    // must be identical because it depends only on (root seed, index 4).
    let draws2: Vec<Vec<u64>> = batch.run(vec![9usize, 1, 1, 1, 3], |_, n, rng| {
        (0..n).map(|_| rng.gen::<u64>()).collect()
    });
    assert_eq!(draws[4], draws2[4]);
    // Distinct jobs get distinct streams.
    assert_ne!(draws[0][0], draws[3][0]);
}

#[test]
fn batched_sample_counts_sum_to_requested_shots() {
    let circuit = parametric_circuit();
    let sets = param_grid(6);
    let exec = Executor::ideal();
    let batch = BatchExecutor::new(4, 9);
    let histograms = batch
        .sample_counts(&exec, &circuit, &sets, 10_000, 5)
        .unwrap();
    assert_eq!(histograms.len(), sets.len());
    for histogram in &histograms {
        let total: usize = histogram.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10_000);
    }
    // Thread-count invariance of the sampled histograms themselves.
    let again = BatchExecutor::new(8, 9)
        .sample_counts(&exec, &circuit, &sets, 10_000, 5)
        .unwrap();
    assert_eq!(histograms, again);
}

#[test]
fn batched_histograms_match_analytic_distribution_at_10k_shots() {
    let circuit = parametric_circuit();
    let sets = param_grid(4);
    let exec = Executor::ideal();
    let shots = 10_000usize;
    let histograms = BatchExecutor::new(2, 31)
        .sample_counts(&exec, &circuit, &sets, shots, 11)
        .unwrap();
    for (params, histogram) in sets.iter().zip(histograms.iter()) {
        let probs = circuit.execute(params).unwrap().probabilities();
        for (outcome, count) in histogram {
            let frac = *count as f64 / shots as f64;
            // 5σ binomial tolerance at p(1-p)/shots, floored for tiny p.
            let p = probs[*outcome];
            let sigma = (p * (1.0 - p) / shots as f64).sqrt().max(1e-3);
            assert!(
                (frac - p).abs() < 5.0 * sigma,
                "outcome {outcome}: sampled {frac} vs analytic {p}"
            );
        }
    }
}

#[test]
fn batched_shot_probabilities_match_analytic_at_10k_shots() {
    let fused = FusedCircuit::compile(&parametric_circuit());
    let sets = param_grid(8);
    let exec = Executor::ideal().with_shots(Some(10_000));
    let batch = BatchExecutor::new(4, 55);
    for qubit in 0..3 {
        let estimates = batch
            .probabilities_of_one(&exec, &fused, &sets, qubit, 1000 + qubit as u64)
            .unwrap();
        for (params, estimate) in sets.iter().zip(estimates.iter()) {
            let exact = fused
                .execute(params)
                .unwrap()
                .probability_of_one(qubit)
                .unwrap();
            let sigma = (exact * (1.0 - exact) / 10_000.0).sqrt().max(1e-3);
            assert!(
                (estimate - exact).abs() < 5.0 * sigma,
                "qubit {qubit}: sampled {estimate} vs exact {exact}"
            );
        }
    }
}

#[test]
fn execute_statevectors_is_thread_count_invariant() {
    let fused = FusedCircuit::compile(&parametric_circuit());
    let sets = param_grid(16);
    let one = BatchExecutor::new(1, 0)
        .execute_statevectors(&fused, &sets)
        .unwrap();
    let eight = BatchExecutor::new(8, 0)
        .execute_statevectors(&fused, &sets)
        .unwrap();
    assert_eq!(one, eight);
}

#[test]
fn compiled_noisy_fallback_matches_uncompiled_per_gate_path() {
    // The compiled noisy path must walk gates exactly like the uncompiled
    // one (same RNG consumption), so identically seeded runs agree.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let circuit = {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).push(Gate::Ry(1, 0.7));
        c
    };
    let fused = FusedCircuit::compile(&circuit);
    let exec =
        Executor::noisy(NoiseModel::depolarizing(0.05, 0.1, 0.02).unwrap()).with_trajectories(12);
    let mut r1 = StdRng::seed_from_u64(5);
    let mut r2 = StdRng::seed_from_u64(5);
    let direct = exec.probability_of_one(&circuit, &[], 1, &mut r1).unwrap();
    let compiled = exec
        .probability_of_one_compiled(&fused, &[], 1, &mut r2)
        .unwrap();
    assert_eq!(direct.to_bits(), compiled.to_bits());
}
