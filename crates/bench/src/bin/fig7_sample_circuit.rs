//! Figure 7 — the 5-qubit sample SWAP-test circuit for the Iris task
//! (ancilla + 2 learned-state qubits + 2 data qubits), printed as text.

use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::layers::LayerStack;
use quclassi::swap_test::build_swap_test_circuit;

fn main() {
    let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).expect("4-dimensional encoder");
    let stack = LayerStack::qc_s(encoder.num_qubits()).expect("QC-S stack");
    let sample = [0.62, 0.35, 0.47, 0.51];
    let (circuit, layout) =
        build_swap_test_circuit(&stack, &encoder, &sample).expect("circuit builds");

    println!("QuClassi sample circuit (paper Fig. 7)");
    println!("  total qubits     : {}", layout.total_qubits);
    println!("  ancilla (control): q[{}]", layout.ancilla);
    println!(
        "  trained state    : q[{}]..q[{}]",
        layout.learned_offset,
        layout.learned_offset + layout.register_width - 1
    );
    println!(
        "  loaded data      : q[{}]..q[{}]",
        layout.data_offset,
        layout.data_offset + layout.register_width - 1
    );
    println!("  trainable params : {}", circuit.num_parameters());
    println!("  gate count       : {}", circuit.gate_count());
    println!("  depth            : {}", circuit.depth());
    println!();
    println!("{}", circuit.to_text());
}
