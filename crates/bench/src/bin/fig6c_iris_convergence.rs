//! Figure 6c — accuracy as a function of epoch for QuClassi (12-parameter
//! QC-S) against classical networks of 12–112 parameters.

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_classical::network::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epochs = scaled(20, 6);
    let task = iris_task(17);
    let mut rng = StdRng::seed_from_u64(66);

    // QuClassi QC-S, 12 trainable parameters in total (4 per class).
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let history = trainer
        .fit_with_eval(
            &mut model,
            &task.train.features,
            &task.train.labels,
            Some(EvalSet {
                features: &task.test.features,
                labels: &task.test.labels,
            }),
            &mut rng,
        )
        .expect("training succeeds");
    let quclassi_series = history.accuracy_series();

    // Classical baselines of increasing parameter count.
    let mut dnn_series: Vec<(String, Vec<f64>)> = Vec::new();
    for target in [12usize, 28, 56, 112] {
        let (cfg, _) = MlpConfig::with_target_params(4, 3, target);
        let mut net = Mlp::new(cfg, &mut rng);
        let stats = net.fit(
            &task.train.features,
            &task.train.labels,
            epochs,
            0.05,
            Some((&task.test.features, &task.test.labels)),
            &mut rng,
        );
        dnn_series.push((
            format!("DNN-{target}P"),
            stats
                .iter()
                .map(|s| s.eval_accuracy.unwrap_or(0.0))
                .collect(),
        ));
    }

    let mut columns: Vec<String> = vec!["epoch".to_string(), "QuClassi-12P".to_string()];
    columns.extend(dnn_series.iter().map(|(n, _)| n.clone()));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = ExperimentReport::new("fig6c_iris_convergence", &column_refs);
    for e in 0..epochs {
        let mut row = vec![(e + 1).to_string(), format!("{:.4}", quclassi_series[e])];
        for (_, series) in &dnn_series {
            row.push(format!("{:.4}", series[e]));
        }
        report.add_row(row);
    }
    report.print();
    report.save_tsv();

    let final_q = quclassi_series.last().copied().unwrap_or(0.0);
    println!("QuClassi final accuracy: {final_q:.4}");
}
