//! Figure 6b — Iris test accuracy of QC-S / QC-SD / QC-SDE against classical
//! DNN baselines with 12, 56 and 112 parameters.

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_infer::CompiledModel;
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_quclassi(
    config: QuClassiConfig,
    task: &quclassi_bench::data::PreparedTask,
    epochs: usize,
    rng: &mut StdRng,
) -> (String, usize, f64) {
    let mut model =
        QuClassiModel::with_random_parameters(config, rng).expect("valid configuration");
    let name = model.stack().architecture_name();
    let params = model.parameter_count();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    // Test accuracy through the compiled serving artifact (bit-identical to
    // the uncompiled analytic path).
    let acc = CompiledModel::compile(&model, FidelityEstimator::analytic())
        .expect("compilation succeeds")
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
            0,
        )
        .expect("evaluation succeeds");
    (name, params, acc)
}

fn train_dnn(
    target_params: usize,
    task: &quclassi_bench::data::PreparedTask,
    epochs: usize,
    rng: &mut StdRng,
) -> (String, usize, f64) {
    let (cfg, count) = MlpConfig::with_target_params(4, 3, target_params);
    let mut net = Mlp::new(cfg, rng);
    net.fit(
        &task.train.features,
        &task.train.labels,
        epochs,
        0.05,
        None,
        rng,
    );
    let acc = net.evaluate_accuracy(&task.test.features, &task.test.labels);
    (format!("DNN-{target_params}P"), count, acc)
}

fn main() {
    let epochs = scaled(25, 6);
    let task = iris_task(11);
    let mut rng = StdRng::seed_from_u64(606);
    let mut report = ExperimentReport::new(
        "fig6b_iris_accuracy",
        &["network", "parameters", "test_accuracy"],
    );

    for config in [
        QuClassiConfig::qc_s(4, 3),
        QuClassiConfig::qc_sd(4, 3),
        QuClassiConfig::qc_sde(4, 3),
    ] {
        let (name, params, acc) = train_quclassi(config, &task, epochs, &mut rng);
        report.add_row(vec![name, params.to_string(), format!("{acc:.4}")]);
    }
    for target in [12usize, 56, 112] {
        let (name, params, acc) = train_dnn(target, &task, epochs, &mut rng);
        report.add_row(vec![name, params.to_string(), format!("{acc:.4}")]);
    }
    report.print();
    report.save_tsv();
}
