//! Ablation — analytic fidelity vs ideal SWAP test vs shot-limited SWAP test
//! as the training estimator (DESIGN.md §7). All three are mathematically
//! the same estimator in the noiseless infinite-shot limit; this experiment
//! shows the accuracy impact of shot noise and the wall-clock cost of the
//! full-register SWAP-test circuit.

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn run(estimator: FidelityEstimator, epochs: usize, rng: &mut StdRng) -> (f64, f64) {
    let task = iris_task(55);
    let mut model = QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            max_samples_per_class: Some(12),
            ..Default::default()
        },
        estimator,
    );
    let start = Instant::now();
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    let secs = start.elapsed().as_secs_f64();
    let acc = model
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &FidelityEstimator::analytic(),
            rng,
        )
        .expect("evaluation succeeds");
    (acc, secs)
}

fn main() {
    let epochs = scaled(10, 3);
    let mut rng = StdRng::seed_from_u64(5353);
    let mut report = ExperimentReport::new(
        "ablation_fidelity_method",
        &["estimator", "test accuracy", "training time (s)"],
    );
    let (acc, secs) = run(FidelityEstimator::analytic(), epochs, &mut rng);
    report.add_row(vec![
        "analytic".into(),
        format!("{acc:.4}"),
        format!("{secs:.2}"),
    ]);
    let (acc, secs) = run(
        FidelityEstimator::swap_test(Executor::ideal()),
        epochs,
        &mut rng,
    );
    report.add_row(vec![
        "swap test (exact)".into(),
        format!("{acc:.4}"),
        format!("{secs:.2}"),
    ]);
    let (acc, secs) = run(
        FidelityEstimator::swap_test(Executor::ideal().with_shots(Some(2048))),
        epochs,
        &mut rng,
    );
    report.add_row(vec![
        "swap test (2048 shots)".into(),
        format!("{acc:.4}"),
        format!("{secs:.2}"),
    ]);
    report.print();
    report.save_tsv();
}
