//! Ablation — dual-angle (two features per qubit) vs single-angle (one
//! feature per qubit) data encoding on the Iris task (paper Section 4.2
//! discusses the trade-off).

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(encoding: EncodingStrategy, epochs: usize, rng: &mut StdRng) -> (usize, usize, f64) {
    let task = iris_task(21);
    let config = QuClassiConfig {
        encoding,
        ..QuClassiConfig::qc_s(4, 3)
    };
    let qubits = config.total_qubits();
    let mut model = QuClassiModel::with_random_parameters(config, rng).unwrap();
    let params = model.parameter_count();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    let acc = model
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &FidelityEstimator::analytic(),
            rng,
        )
        .expect("evaluation succeeds");
    (qubits, params, acc)
}

fn main() {
    let epochs = scaled(20, 5);
    let mut rng = StdRng::seed_from_u64(2121);
    let mut report = ExperimentReport::new(
        "ablation_encoding",
        &["encoding", "total qubits", "parameters", "test accuracy"],
    );
    let (q, p, acc) = run(EncodingStrategy::DualAngle, epochs, &mut rng);
    report.add_row(vec![
        "dual-angle (RY+RZ)".into(),
        q.to_string(),
        p.to_string(),
        format!("{acc:.4}"),
    ]);
    let (q, p, acc) = run(EncodingStrategy::SingleAngle, epochs, &mut rng);
    report.add_row(vec![
        "single-angle (RY)".into(),
        q.to_string(),
        p.to_string(),
        format!("{acc:.4}"),
    ]);
    report.print();
    report.save_tsv();
}
