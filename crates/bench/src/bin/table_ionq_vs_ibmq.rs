//! Section 5.4 — IonQ vs IBM-Q Cairo on the (3,6) task.
//!
//! The paper attributes the accuracy gap (IonQ 80 % vs IBM-Q Cairo 72 %,
//! ideal 97.8 %) to connectivity: the trapped-ion device is all-to-all and
//! needs no routing SWAPs, whereas Cairo's heavy-hex coupling forces 21 extra
//! CNOTs. This experiment transpiles the QuClassi-S SWAP-test circuit for
//! both devices, reports the CNOT accounting, and evaluates a trained model
//! through each device's noise model scaled by its CNOT overhead.

use quclassi::prelude::*;
use quclassi::swap_test::build_swap_test_circuit;
use quclassi_bench::data::mnist_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::executor::Executor;
use quclassi_sim::noise::NoiseModel;
use quclassi_sim::transpile::transpile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let per_class = scaled(60, 15);
    let epochs = scaled(10, 3);
    let mut rng = StdRng::seed_from_u64(3636);
    // 4 PCA dimensions → 5-qubit circuit (both devices have ≥ 5 usable qubits).
    let task = mnist_task(&[3, 6], 4, per_class, 36);

    // Train QC-S on the ideal simulator.
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(
            &mut model,
            &task.train.features,
            &task.train.labels,
            &mut rng,
        )
        .expect("training succeeds");
    let ideal_acc = model
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .expect("evaluation succeeds");

    // Transpile the inference circuit for each device.
    let (circuit, _) =
        build_swap_test_circuit(model.stack(), model.encoder(), &task.test.features[0])
            .expect("circuit builds");
    let gates = circuit.bind(model.class_params(0).unwrap()).expect("bind");

    let ionq = DeviceModel::ionq();
    let cairo = DeviceModel::ibmq_cairo();
    let ionq_report = transpile(&gates, &ionq.coupling).expect("ionq transpiles");
    let cairo_report = transpile(&gates, &cairo.coupling).expect("cairo transpiles");

    let mut table = ExperimentReport::new(
        "table_ionq_vs_ibmq",
        &[
            "device",
            "cnots",
            "routing swaps",
            "routing cnots",
            "accuracy",
        ],
    );

    // Device-noise evaluation: the effective per-gate error is amplified by
    // the extra routing CNOTs each device needs.
    let mut eval_on = |device: &DeviceModel, extra_cnots: usize, base_cnots: usize| -> f64 {
        let scale = 1.0 + extra_cnots as f64 / base_cnots.max(1) as f64;
        let p1 = device.noise.single_qubit[0].parameter();
        let p2 = (device.noise.two_qubit[0].parameter() * scale).min(0.4);
        let readout = device.noise.readout.p01;
        let noise = NoiseModel::depolarizing(p1, p2, readout).expect("valid noise");
        let est =
            FidelityEstimator::swap_test(Executor::noisy_density(noise).with_shots(Some(4096)));
        model
            .evaluate_accuracy(&task.test.features, &task.test.labels, &est, &mut rng)
            .expect("noisy evaluation succeeds")
    };

    let ionq_acc = eval_on(&ionq, ionq_report.routing_cnots, ionq_report.cnot_count);
    let cairo_acc = eval_on(&cairo, cairo_report.routing_cnots, cairo_report.cnot_count);

    table.add_row(vec![
        "ideal simulator".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{ideal_acc:.4}"),
    ]);
    table.add_row(vec![
        "ionq (all-to-all)".into(),
        ionq_report.cnot_count.to_string(),
        ionq_report.swaps_inserted.to_string(),
        ionq_report.routing_cnots.to_string(),
        format!("{ionq_acc:.4}"),
    ]);
    table.add_row(vec![
        "ibmq_cairo (heavy-hex)".into(),
        cairo_report.cnot_count.to_string(),
        cairo_report.swaps_inserted.to_string(),
        cairo_report.routing_cnots.to_string(),
        format!("{cairo_acc:.4}"),
    ]);
    table.print();
    table.save_tsv();

    println!(
        "routing overhead: ionq {} extra CNOTs, cairo {} extra CNOTs",
        ionq_report.routing_cnots, cairo_report.routing_cnots
    );
}
