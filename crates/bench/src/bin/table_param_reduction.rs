//! Section 5.3 parameter-reduction claims — compares the trainable-parameter
//! counts of QuClassi models against the classical DNN baselines the paper
//! pairs them with (97.37 % reduction for binary MNIST, 96.33 % for 5-class,
//! 47.71 % for 10-class, and the Iris setting).

use quclassi::prelude::*;
use quclassi_bench::report::ExperimentReport;
use quclassi_classical::network::MlpConfig;

fn reduction(quantum: usize, classical: usize) -> f64 {
    100.0 * (1.0 - quantum as f64 / classical as f64)
}

fn main() {
    let mut report = ExperimentReport::new(
        "table_param_reduction",
        &[
            "task",
            "QuClassi params",
            "DNN baseline",
            "DNN params",
            "reduction %",
        ],
    );

    // Binary MNIST: QC-S on 16 dims, 2 classes (32 params) vs DNN-1218.
    let binary = QuClassiModel::new(QuClassiConfig::qc_s(16, 2)).unwrap();
    let (_, dnn1218) = MlpConfig::with_target_params(16, 2, 1218);
    report.add_row(vec![
        "MNIST binary (16d)".into(),
        binary.parameter_count().to_string(),
        "DNN-1218".into(),
        dnn1218.to_string(),
        format!("{:.2}", reduction(binary.parameter_count(), dnn1218)),
    ]);

    // 5-class MNIST vs DNN-1308.
    let five = QuClassiModel::new(QuClassiConfig::qc_s(16, 5)).unwrap();
    let (_, dnn1308) = MlpConfig::with_target_params(16, 5, 1308);
    report.add_row(vec![
        "MNIST 5-class (16d)".into(),
        five.parameter_count().to_string(),
        "DNN-1308".into(),
        dnn1308.to_string(),
        format!("{:.2}", reduction(five.parameter_count(), dnn1308)),
    ]);

    // 10-class MNIST vs DNN-306.
    let ten = QuClassiModel::new(QuClassiConfig::qc_s(16, 10)).unwrap();
    let (_, dnn306) = MlpConfig::with_target_params(16, 10, 306);
    report.add_row(vec![
        "MNIST 10-class (16d)".into(),
        ten.parameter_count().to_string(),
        "DNN-306".into(),
        dnn306.to_string(),
        format!("{:.2}", reduction(ten.parameter_count(), dnn306)),
    ]);

    // Iris vs DNN-112.
    let iris = QuClassiModel::new(QuClassiConfig::qc_s(4, 3)).unwrap();
    let (_, dnn112) = MlpConfig::with_target_params(4, 3, 112);
    report.add_row(vec![
        "Iris (4d, 3 classes)".into(),
        iris.parameter_count().to_string(),
        "DNN-112".into(),
        dnn112.to_string(),
        format!("{:.2}", reduction(iris.parameter_count(), dnn112)),
    ]);

    report.print();
    report.save_tsv();
}
