//! Figure 6a — per-class training loss on the Iris dataset across epochs.
//!
//! Trains the default QC-S QuClassi on the Iris task for 25 epochs and
//! prints the per-class cross-entropy loss after every epoch (the three
//! series of the paper's Fig. 6a).

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epochs = scaled(25, 6);
    let task = iris_task(11);
    let mut rng = StdRng::seed_from_u64(2022);

    let mut model = QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng)
        .expect("valid Iris configuration");
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let history = trainer
        .fit(
            &mut model,
            &task.train.features,
            &task.train.labels,
            &mut rng,
        )
        .expect("training succeeds");

    let mut report = ExperimentReport::new(
        "fig6a_iris_loss",
        &[
            "epoch",
            "loss_class1",
            "loss_class2",
            "loss_class3",
            "mean_loss",
        ],
    );
    for stats in &history.epochs {
        report.add_row(vec![
            stats.epoch.to_string(),
            format!("{:.4}", stats.per_class_loss[0]),
            format!("{:.4}", stats.per_class_loss[1]),
            format!("{:.4}", stats.per_class_loss[2]),
            format!("{:.4}", stats.mean_loss),
        ]);
    }
    report.print();
    report.save_tsv();

    let first = history
        .epochs
        .first()
        .expect("at least one epoch")
        .mean_loss;
    let last = history.final_loss().expect("at least one epoch");
    println!("loss decreased from {first:.4} to {last:.4} over {epochs} epochs");
}
