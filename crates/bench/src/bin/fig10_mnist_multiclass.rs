//! Figure 10 — multi-class MNIST classification: QuClassi QC-S vs QF-pNet vs
//! DNN-306 / DNN-1308 on (0,3,6), (1,3,6), (0,3,6,9), (0,1,3,6,9) and the
//! full 10-class task, using 16 PCA dimensions.

use quclassi::prelude::*;
use quclassi_baselines::prelude::*;
use quclassi_bench::data::{mnist_task, PreparedTask};
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_infer::CompiledModel;
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quclassi_accuracy(task: &PreparedTask, epochs: usize, rng: &mut StdRng) -> (f64, usize) {
    let dims = task.train.dim();
    let classes = task.train.num_classes;
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(dims, classes), rng).unwrap();
    let params = model.parameter_count();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            contrastive: true,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    // Test accuracy through the compiled serving artifact (bit-identical to
    // the uncompiled analytic path).
    let acc = CompiledModel::compile(&model, FidelityEstimator::analytic())
        .expect("compilation succeeds")
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
            0,
        )
        .expect("evaluation succeeds");
    (acc, params)
}

fn qf_pnet_accuracy(task: &PreparedTask, epochs: usize, rng: &mut StdRng) -> f64 {
    let mut net = QfPnet::new(
        QfPnetConfig {
            data_dim: task.train.dim(),
            num_classes: task.train.num_classes,
            hidden: 8,
            epochs,
            learning_rate: 0.1,
        },
        rng,
    )
    .expect("valid QF-pNet config");
    net.fit(&task.train.features, &task.train.labels, rng)
        .expect("QF-pNet training succeeds");
    net.evaluate_accuracy(&task.test.features, &task.test.labels, rng)
        .expect("QF-pNet evaluation succeeds")
}

fn dnn_accuracy(task: &PreparedTask, target_params: usize, epochs: usize, rng: &mut StdRng) -> f64 {
    let (cfg, _) =
        MlpConfig::with_target_params(task.train.dim(), task.train.num_classes, target_params);
    let mut net = Mlp::new(cfg, rng);
    net.fit(
        &task.train.features,
        &task.train.labels,
        epochs,
        0.1,
        None,
        rng,
    );
    net.evaluate_accuracy(&task.test.features, &task.test.labels)
}

fn main() {
    let per_class = scaled(60, 12);
    let epochs = scaled(10, 3);
    let tasks: Vec<Vec<usize>> = vec![
        vec![0, 3, 6],
        vec![1, 3, 6],
        vec![0, 3, 6, 9],
        vec![0, 1, 3, 6, 9],
        (0..10).collect(),
    ];
    let mut rng = StdRng::seed_from_u64(1010);

    let mut report = ExperimentReport::new(
        "fig10_mnist_multiclass",
        &[
            "task",
            "QC-S",
            "QC-S params",
            "QF-pNet",
            "DNN-306",
            "DNN-1308",
        ],
    );
    for digits in &tasks {
        let task = mnist_task(digits, 16, per_class, digits.len() as u64 + 40);
        let (qc, params) = quclassi_accuracy(&task, epochs, &mut rng);
        let qf = qf_pnet_accuracy(&task, 4 * epochs, &mut rng);
        let d306 = dnn_accuracy(&task, 306, 4 * epochs, &mut rng);
        let d1308 = dnn_accuracy(&task, 1308, 4 * epochs, &mut rng);
        let label: Vec<String> = digits.iter().map(|d| d.to_string()).collect();
        let label = if digits.len() == 10 {
            "10-class".to_string()
        } else {
            label.join("/")
        };
        report.add_row(vec![
            label,
            format!("{qc:.4}"),
            params.to_string(),
            format!("{qf:.4}"),
            format!("{d306:.4}"),
            format!("{d1308:.4}"),
        ]);
    }
    report.print();
    report.save_tsv();
}
