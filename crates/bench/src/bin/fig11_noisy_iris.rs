//! Figure 11 — training-loss convergence of QuClassi on the Iris task when
//! every fidelity is estimated through a noisy device model (IBM-Q London /
//! New York / Melbourne) with 8000 shots, compared with the ideal simulator.

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn loss_series(
    estimator: FidelityEstimator,
    epochs: usize,
    max_per_class: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let task = iris_task(31);
    let mut model = QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            max_samples_per_class: Some(max_per_class),
            ..Default::default()
        },
        estimator,
    );
    let history = trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    history.epochs.iter().map(|e| e.mean_loss).collect()
}

fn main() {
    let epochs = scaled(15, 4);
    let max_per_class = scaled(10, 4);
    let shots = 8000;
    let mut rng = StdRng::seed_from_u64(1111);

    // Ideal simulator: analytic fidelity.
    let simulator = loss_series(
        FidelityEstimator::analytic(),
        epochs,
        max_per_class,
        &mut rng,
    );

    // Noisy devices: exact density-matrix evolution of the 5-qubit SWAP-test
    // circuit under each device's noise model, with 8000 measurement shots.
    let mut device_series: Vec<(String, Vec<f64>)> = Vec::new();
    for device in [
        DeviceModel::ibmq_london(),
        DeviceModel::ibmq_new_york(),
        DeviceModel::ibmq_melbourne(),
    ] {
        let executor = Executor::noisy_density(device.noise.clone()).with_shots(Some(shots));
        let series = loss_series(
            FidelityEstimator::swap_test(executor),
            epochs,
            max_per_class,
            &mut rng,
        );
        device_series.push((device.name.clone(), series));
    }

    let mut columns = vec!["epoch".to_string(), "simulator".to_string()];
    columns.extend(device_series.iter().map(|(n, _)| n.clone()));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = ExperimentReport::new("fig11_noisy_iris", &column_refs);
    for e in 0..epochs {
        let mut row = vec![(e + 1).to_string(), format!("{:.4}", simulator[e])];
        for (_, series) in &device_series {
            row.push(format!("{:.4}", series[e]));
        }
        report.add_row(row);
    }
    report.print();
    report.save_tsv();

    println!("shots per fidelity estimate: {shots}");
    println!(
        "final losses — simulator {:.4}, {}",
        simulator.last().unwrap(),
        device_series
            .iter()
            .map(|(n, s)| format!("{n} {:.4}", s.last().unwrap()))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
