//! Figure 12 — binary MNIST accuracy on a noisy quantum device (4 PCA
//! dimensions, 5-qubit circuits): QC-S / QC-SD / QC-SDE trained on the ideal
//! simulator, the same QC-S model evaluated through the IBM-Q Rome noise
//! model, and the TFQ-style comparator, on the pairs (3,4), (6,9), (2,9).

use quclassi::prelude::*;
use quclassi::swap_test::build_swap_test_circuit;
use quclassi_baselines::prelude::*;
use quclassi_bench::data::{mnist_task, PreparedTask};
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::executor::Executor;
use quclassi_sim::noise::NoiseModel;
use quclassi_sim::transpile::transpile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_quclassi(
    config: QuClassiConfig,
    task: &PreparedTask,
    epochs: usize,
    rng: &mut StdRng,
) -> QuClassiModel {
    let mut model = QuClassiModel::with_random_parameters(config, rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    model
}

fn accuracy(
    model: &QuClassiModel,
    task: &PreparedTask,
    est: &FidelityEstimator,
    rng: &mut StdRng,
) -> f64 {
    model
        .evaluate_accuracy(&task.test.features, &task.test.labels, est, rng)
        .expect("evaluation succeeds")
}

fn main() {
    let per_class = scaled(60, 15);
    let epochs = scaled(10, 3);
    let shots = 4096;
    let pairs: [(usize, usize); 3] = [(3, 4), (6, 9), (2, 9)];
    let mut rng = StdRng::seed_from_u64(1212);

    let mut report = ExperimentReport::new(
        "fig12_noisy_mnist",
        &[
            "pair",
            "QC-S",
            "QC-SD",
            "QC-SDE",
            "IBM-Q (noisy QC-S)",
            "TFQ",
        ],
    );
    for (a, b) in pairs {
        let task = mnist_task(&[a, b], 4, per_class, (a * 7 + b) as u64);

        let qc_s = train_quclassi(QuClassiConfig::qc_s(4, 2), &task, epochs, &mut rng);
        let qc_sd = train_quclassi(QuClassiConfig::qc_sd(4, 2), &task, epochs, &mut rng);
        let qc_sde = train_quclassi(QuClassiConfig::qc_sde(4, 2), &task, epochs, &mut rng);

        let ideal = FidelityEstimator::analytic();
        let acc_s = accuracy(&qc_s, &task, &ideal, &mut rng);
        let acc_sd = accuracy(&qc_sd, &task, &ideal, &mut rng);
        let acc_sde = accuracy(&qc_sde, &task, &ideal, &mut rng);

        // The same QC-S model evaluated through a real-device noise model,
        // like running inference on IBM-Q Rome. The noise simulation applies
        // channels per *logical* gate, but the physical device executes the
        // transpiled circuit (CSWAPs decomposed to CNOTs plus routing SWAPs
        // on the linear coupling map), so the effective two-qubit error is
        // scaled by the transpiled-vs-logical CNOT ratio.
        let rome = DeviceModel::ibmq_rome();
        let (circuit, _) =
            build_swap_test_circuit(qc_s.stack(), qc_s.encoder(), &task.test.features[0])
                .expect("circuit builds");
        let bound = circuit
            .bind(qc_s.class_params(0).expect("class 0 exists"))
            .expect("parameters bind");
        let routed = transpile(&bound, &rome.coupling).expect("routing succeeds");
        let logical_two_qubit = bound.iter().filter(|g| g.arity() >= 2).count().max(1);
        let amplification = routed.cnot_count as f64 / logical_two_qubit as f64;
        let p1 = rome.noise.single_qubit[0].parameter();
        let p2 = (rome.noise.two_qubit[0].parameter() * amplification).min(0.45);
        let readout = rome.noise.readout.p01;
        let hw_noise = NoiseModel::depolarizing(p1, p2, readout).expect("valid noise model");
        let noisy_est =
            FidelityEstimator::swap_test(Executor::noisy_density(hw_noise).with_shots(Some(shots)));
        let acc_hw = accuracy(&qc_s, &task, &noisy_est, &mut rng);

        let mut tfq = TfqClassifier::new(
            TfqConfig {
                data_dim: 4,
                num_layers: 2,
                learning_rate: 0.2,
                epochs,
            },
            &mut rng,
        )
        .expect("valid TFQ config");
        tfq.fit(&task.train.features, &task.train.labels, &mut rng)
            .expect("TFQ training succeeds");
        let acc_tfq = tfq
            .evaluate_accuracy(&task.test.features, &task.test.labels, &mut rng)
            .expect("TFQ evaluation succeeds");

        report.add_row(vec![
            format!("{a}/{b}"),
            format!("{acc_s:.4}"),
            format!("{acc_sd:.4}"),
            format!("{acc_sde:.4}"),
            format!("{acc_hw:.4}"),
            format!("{acc_tfq:.4}"),
        ]);
    }
    report.print();
    report.save_tsv();
    println!("noisy evaluations use the ibmq_rome noise model with {shots} shots per fidelity");
}
