//! Figure 9 — binary MNIST classification: QuClassi QC-S vs QF-pNet vs
//! TFQ-style vs DNN-306 / DNN-1218 on the digit pairs (1,5), (3,6), (3,9)
//! and (3,8), using 16 PCA dimensions (17-qubit QuClassi circuits).

use quclassi::prelude::*;
use quclassi_baselines::prelude::*;
use quclassi_bench::data::{mnist_task, PreparedTask};
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_infer::CompiledModel;
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quclassi_accuracy(task: &PreparedTask, epochs: usize, rng: &mut StdRng) -> f64 {
    let dims = task.train.dim();
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(dims, 2), rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    // Evaluate through the compiled serving artifact (bit-identical to the
    // uncompiled path for the analytic estimator, and much faster).
    CompiledModel::compile(&model, FidelityEstimator::analytic())
        .expect("compilation succeeds")
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
            0,
        )
        .expect("evaluation succeeds")
}

fn tfq_accuracy(task: &PreparedTask, epochs: usize, rng: &mut StdRng) -> f64 {
    let mut clf = TfqClassifier::new(
        TfqConfig {
            data_dim: task.train.dim(),
            num_layers: 1,
            learning_rate: 0.2,
            epochs,
        },
        rng,
    )
    .expect("valid TFQ config");
    clf.fit(&task.train.features, &task.train.labels, rng)
        .expect("TFQ training succeeds");
    clf.evaluate_accuracy(&task.test.features, &task.test.labels, rng)
        .expect("TFQ evaluation succeeds")
}

fn qf_pnet_accuracy(task: &PreparedTask, epochs: usize, rng: &mut StdRng) -> f64 {
    let mut net = QfPnet::new(
        QfPnetConfig {
            data_dim: task.train.dim(),
            num_classes: 2,
            hidden: 8,
            epochs,
            learning_rate: 0.1,
        },
        rng,
    )
    .expect("valid QF-pNet config");
    net.fit(&task.train.features, &task.train.labels, rng)
        .expect("QF-pNet training succeeds");
    net.evaluate_accuracy(&task.test.features, &task.test.labels, rng)
        .expect("QF-pNet evaluation succeeds")
}

fn dnn_accuracy(task: &PreparedTask, target_params: usize, epochs: usize, rng: &mut StdRng) -> f64 {
    let (cfg, _) = MlpConfig::with_target_params(task.train.dim(), 2, target_params);
    let mut net = Mlp::new(cfg, rng);
    net.fit(
        &task.train.features,
        &task.train.labels,
        epochs,
        0.1,
        None,
        rng,
    );
    net.evaluate_accuracy(&task.test.features, &task.test.labels)
}

fn main() {
    let per_class = scaled(80, 15);
    let epochs = scaled(10, 3);
    let pairs: [(usize, usize); 4] = [(1, 5), (3, 6), (3, 9), (3, 8)];
    let mut rng = StdRng::seed_from_u64(909);

    let mut report = ExperimentReport::new(
        "fig9_mnist_binary",
        &["pair", "QC-S", "QF-pNet", "TFQ", "DNN-306", "DNN-1218"],
    );
    for (a, b) in pairs {
        let task = mnist_task(&[a, b], 16, per_class, (a * 10 + b) as u64);
        let qc = quclassi_accuracy(&task, epochs, &mut rng);
        let qf = qf_pnet_accuracy(&task, 4 * epochs, &mut rng);
        let tfq = tfq_accuracy(&task, epochs.min(5), &mut rng);
        let d306 = dnn_accuracy(&task, 306, 4 * epochs, &mut rng);
        let d1218 = dnn_accuracy(&task, 1218, 4 * epochs, &mut rng);
        report.add_row(vec![
            format!("{a}/{b}"),
            format!("{qc:.4}"),
            format!("{qf:.4}"),
            format!("{tfq:.4}"),
            format!("{d306:.4}"),
            format!("{d1218:.4}"),
        ]);
    }
    report.print();
    report.save_tsv();
    println!("QuClassi-S uses 32 trainable parameters (16 per class) on these tasks.");
}
