//! Figure 8 — Bloch-sphere evolution of the learned state while learning to
//! identify a 0 against a 6.
//!
//! Trains the (0,6) binary task on 4 PCA dimensions and prints the Bloch
//! vectors of the class-0 learned-state qubits at initialisation and after
//! training, together with the angular distance moved towards the class
//! centroid's encoded state.

use quclassi::bloch::{angular_distance, bloch_points, render_text};
use quclassi::prelude::*;
use quclassi_bench::data::mnist_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let per_class = scaled(60, 15);
    let epochs = scaled(10, 3);
    let task = mnist_task(&[0, 6], 4, per_class, 8);
    let mut rng = StdRng::seed_from_u64(808);

    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 2), &mut rng).unwrap();
    let initial_state = model.learned_state(0).expect("class 0 state");
    let initial_points = bloch_points(&initial_state).expect("bloch vectors");

    // Class-0 centroid in feature space, encoded as a quantum state.
    let class0: Vec<&Vec<f64>> = task
        .train
        .features
        .iter()
        .zip(task.train.labels.iter())
        .filter(|(_, &y)| y == 0)
        .map(|(x, _)| x)
        .collect();
    let dim = task.train.dim();
    let centroid: Vec<f64> = (0..dim)
        .map(|j| class0.iter().map(|x| x[j]).sum::<f64>() / class0.len() as f64)
        .collect();
    let target_state = model.encoder().encode_state(&centroid).expect("encoding");
    let target_points = bloch_points(&target_state).expect("bloch vectors");

    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(
            &mut model,
            &task.train.features,
            &task.train.labels,
            &mut rng,
        )
        .expect("training succeeds");

    let trained_state = model.learned_state(0).expect("class 0 state");
    let trained_points = bloch_points(&trained_state).expect("bloch vectors");

    println!("== Fig. 8: learned state for class '0' (vs class '6') ==\n");
    println!("-- epoch 0 (random initialisation) --");
    println!("{}", render_text(&initial_points));
    println!("-- epoch {epochs} (trained) --");
    println!("{}", render_text(&trained_points));
    println!("-- encoded class-0 centroid (training target) --");
    println!("{}", render_text(&target_points));

    let mut report = ExperimentReport::new(
        "fig8_bloch_evolution",
        &[
            "qubit",
            "distance_to_target_epoch0",
            "distance_to_target_trained",
        ],
    );
    for q in 0..initial_points.len() {
        let before = angular_distance(&initial_points[q], &target_points[q]);
        let after = angular_distance(&trained_points[q], &target_points[q]);
        report.add_row(vec![
            q.to_string(),
            format!("{before:.4}"),
            format!("{after:.4}"),
        ]);
    }
    report.print();
    report.save_tsv();

    let before: f64 = (0..initial_points.len())
        .map(|q| angular_distance(&initial_points[q], &target_points[q]))
        .sum();
    let after: f64 = (0..trained_points.len())
        .map(|q| angular_distance(&trained_points[q], &target_points[q]))
        .sum();
    println!("total angular distance to target: {before:.4} rad -> {after:.4} rad");
}
