//! Ablation — the paper's epoch-scaled parameter shift π/(2√ε) against the
//! textbook fixed π/2 shift (Section 4.4, Eq. 15).

use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use quclassi_bench::report::ExperimentReport;
use quclassi_bench::runtime::scaled;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(shift: ShiftSchedule, epochs: usize, rng: &mut StdRng) -> (Vec<f64>, f64) {
    let task = iris_task(77);
    let mut model = QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            shift,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let history = trainer
        .fit(&mut model, &task.train.features, &task.train.labels, rng)
        .expect("training succeeds");
    let acc = model
        .evaluate_accuracy(
            &task.test.features,
            &task.test.labels,
            &FidelityEstimator::analytic(),
            rng,
        )
        .expect("evaluation succeeds");
    (history.epochs.iter().map(|e| e.mean_loss).collect(), acc)
}

fn main() {
    let epochs = scaled(20, 5);
    let mut rng = StdRng::seed_from_u64(4242);
    let (scaled_loss, scaled_acc) = run(ShiftSchedule::EpochScaled, epochs, &mut rng);
    let (fixed_loss, fixed_acc) = run(
        ShiftSchedule::Fixed(std::f64::consts::FRAC_PI_2),
        epochs,
        &mut rng,
    );

    let mut report = ExperimentReport::new(
        "ablation_shift_schedule",
        &[
            "epoch",
            "loss (epoch-scaled shift)",
            "loss (fixed pi/2 shift)",
        ],
    );
    for e in 0..epochs {
        report.add_row(vec![
            (e + 1).to_string(),
            format!("{:.4}", scaled_loss[e]),
            format!("{:.4}", fixed_loss[e]),
        ]);
    }
    report.print();
    report.save_tsv();
    println!("final accuracy — epoch-scaled: {scaled_acc:.4}, fixed: {fixed_acc:.4}");
}
