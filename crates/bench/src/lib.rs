//! # quclassi-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section (see DESIGN.md §6 for the experiment index).
//! Each figure/table has a dedicated binary under `src/bin/`; Criterion
//! micro-benchmarks live under `benches/`.
//!
//! The library part of the crate provides what those binaries share:
//!
//! * [`report`] — a tabular experiment report that prints to the terminal and
//!   writes a TSV file under `target/experiments/`;
//! * [`data`] — dataset preparation pipelines (Iris, PCA-reduced synthetic
//!   MNIST digit subsets) matching the paper's preprocessing;
//! * [`runtime`] — the `QUCLASSI_QUICK` switch that shrinks workloads for
//!   smoke runs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Tabular experiment reports.
pub mod report {
    use std::fs;
    use std::path::PathBuf;

    /// A named table of experiment results.
    #[derive(Clone, Debug)]
    pub struct ExperimentReport {
        /// Experiment identifier, e.g. `fig9_mnist_binary`.
        pub name: String,
        /// Column headers.
        pub columns: Vec<String>,
        /// Rows of cells, aligned with `columns`.
        pub rows: Vec<Vec<String>>,
    }

    impl ExperimentReport {
        /// Creates an empty report.
        pub fn new(name: &str, columns: &[&str]) -> Self {
            ExperimentReport {
                name: name.to_string(),
                columns: columns.iter().map(|c| c.to_string()).collect(),
                rows: Vec::new(),
            }
        }

        /// Appends a row (must match the column count).
        pub fn add_row(&mut self, cells: Vec<String>) {
            assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
            self.rows.push(cells);
        }

        /// Renders an aligned text table.
        pub fn to_table(&self) -> String {
            let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
            for row in &self.rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let mut out = String::new();
            let header: Vec<String> = self
                .columns
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&header.join("  "));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
            for row in &self.rows {
                let line: Vec<String> = row
                    .iter()
                    .zip(widths.iter())
                    .map(|(c, w)| format!("{c:<w$}"))
                    .collect();
                out.push_str(&line.join("  "));
                out.push('\n');
            }
            out
        }

        /// Prints the table with a heading.
        pub fn print(&self) {
            println!("\n== {} ==", self.name);
            println!("{}", self.to_table());
        }

        /// Writes the report as a TSV file under `target/experiments/` and
        /// returns the path. Failures to write are reported but not fatal.
        pub fn save_tsv(&self) -> Option<PathBuf> {
            let dir = PathBuf::from("target/experiments");
            if let Err(e) = fs::create_dir_all(&dir) {
                eprintln!("warning: could not create {dir:?}: {e}");
                return None;
            }
            let path = dir.join(format!("{}.tsv", self.name));
            let mut content = self.columns.join("\t");
            content.push('\n');
            for row in &self.rows {
                content.push_str(&row.join("\t"));
                content.push('\n');
            }
            match fs::write(&path, content) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("warning: could not write {path:?}: {e}");
                    None
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn table_rendering_aligns_columns() {
            let mut r = ExperimentReport::new("demo", &["task", "accuracy"]);
            r.add_row(vec!["(3,6)".into(), "0.978".into()]);
            r.add_row(vec!["ten-class".into(), "0.78".into()]);
            let t = r.to_table();
            assert!(t.contains("task"));
            assert!(t.lines().count() >= 4);
        }

        #[test]
        #[should_panic(expected = "row width mismatch")]
        fn row_width_checked() {
            let mut r = ExperimentReport::new("demo", &["a", "b"]);
            r.add_row(vec!["only one".into()]);
        }
    }
}

/// Runtime knobs shared by the experiment binaries.
pub mod runtime {
    /// True when the `QUCLASSI_QUICK` environment variable is set to a
    /// non-empty, non-"0" value: binaries then shrink sample counts and epoch
    /// counts so a full figure regenerates in seconds rather than minutes.
    pub fn quick() -> bool {
        std::env::var("QUCLASSI_QUICK")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    }

    /// Picks between the full and the quick value of a workload knob.
    pub fn scaled(full: usize, quick_value: usize) -> usize {
        if quick() {
            quick_value
        } else {
            full
        }
    }
}

/// Dataset preparation pipelines shared by the experiment binaries.
pub mod data {
    use quclassi_classical::pca::Pca;
    use quclassi_datasets::dataset::Dataset;
    use quclassi_datasets::preprocess::MinMaxScaler;
    use quclassi_datasets::{iris, mnist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A normalised train/test pair ready for quantum encoding.
    #[derive(Clone, Debug)]
    pub struct PreparedTask {
        /// Training split (features in [0, 1]).
        pub train: Dataset,
        /// Test split (features in [0, 1]).
        pub test: Dataset,
        /// Human-readable task name, e.g. `mnist(3,6)@16d`.
        pub name: String,
    }

    /// Prepares the Iris task: stratified 70/30 split, min–max normalised to
    /// [0, 1] with statistics from the training split.
    pub fn iris_task(seed: u64) -> PreparedTask {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = iris::load();
        let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
        let scaler = MinMaxScaler::fit(&train_raw.features);
        let mut train = train_raw.clone();
        train.features = scaler.transform(&train_raw.features);
        let mut test = test_raw.clone();
        test.features = scaler.transform(&test_raw.features);
        PreparedTask {
            train,
            test,
            name: "iris@4d".to_string(),
        }
    }

    /// Prepares a synthetic-MNIST digit-subset task: generates the digits,
    /// PCA-reduces to `dims` components (PCA fitted on the training split),
    /// then min–max normalises into [0, 1].
    ///
    /// `digits` selects and orders the classes (e.g. `&[3, 6]` for the (3,6)
    /// binary task); `per_class` is the number of *training* images per
    /// class; a further `per_class / 3 + 5` images per class form the test
    /// split.
    pub fn mnist_task(digits: &[usize], dims: usize, per_class: usize, seed: u64) -> PreparedTask {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let test_per_class = per_class / 3 + 5;
        let full = mnist::generate(per_class + test_per_class, seed);
        let subset = full.filter_classes(digits);
        // Split per class: first `per_class` samples train, rest test.
        let mut train_features = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_features = Vec::new();
        let mut test_labels = Vec::new();
        let mut seen = vec![0usize; digits.len()];
        for (x, &y) in subset.features.iter().zip(subset.labels.iter()) {
            if seen[y] < per_class {
                train_features.push(x.clone());
                train_labels.push(y);
            } else {
                test_features.push(x.clone());
                test_labels.push(y);
            }
            seen[y] += 1;
        }
        // PCA on the raw pixels of the training split.
        let pca = Pca::fit(&train_features, dims, &mut rng);
        let train_z = pca.transform(&train_features);
        let test_z = pca.transform(&test_features);
        let scaler = MinMaxScaler::fit(&train_z);
        let train = Dataset::new(scaler.transform(&train_z), train_labels, digits.len());
        let test = Dataset::new(scaler.transform(&test_z), test_labels, digits.len());
        let digit_list: Vec<String> = digits.iter().map(|d| d.to_string()).collect();
        PreparedTask {
            train,
            test,
            name: format!("mnist({})@{}d", digit_list.join(","), dims),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn iris_task_is_normalised_and_split() {
            let t = iris_task(1);
            assert_eq!(t.train.dim(), 4);
            assert_eq!(t.train.num_classes, 3);
            assert!(!t.test.is_empty());
            for row in t.train.features.iter().chain(t.test.features.iter()) {
                for &v in row {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }

        #[test]
        fn mnist_task_reduces_and_relabels() {
            let t = mnist_task(&[3, 6], 8, 12, 3);
            assert_eq!(t.train.dim(), 8);
            assert_eq!(t.train.num_classes, 2);
            assert_eq!(t.train.class_counts(), vec![12, 12]);
            assert!(!t.test.is_empty());
            for row in &t.test.features {
                for &v in row {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
            assert!(t.name.contains("3,6"));
        }
    }
}
