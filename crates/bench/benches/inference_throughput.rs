//! The serving benchmark: compiled inference (`quclassi-infer`) against the
//! convenience path (`QuClassiModel::predict`) it replaces in deployment.
//!
//! The workload is single-sample and batched prediction on the paper's two
//! evaluation shapes — Iris (4 features / 3 classes, 5 qubits) and binary
//! MNIST (16 features / 2 classes, 17 qubits) — under the default analytic
//! estimator (what `predict` uses everywhere in this repo) and the exact
//! SWAP-test estimator (the paper-faithful circuit path).
//!
//! Besides the criterion timings, the binary records the measured speedups
//! to `BENCH_inference_throughput.json` at the workspace root so the perf
//! trajectory is tracked across PRs. `--test` runs everything once, untimed
//! (smoke mode does not overwrite the committed numbers).

use criterion::{criterion_group, BenchmarkId, Criterion};
use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi_infer::CompiledModel;
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

struct Workload {
    name: &'static str,
    model: QuClassiModel,
    /// A rotating probe set (distinct encodings, so single-sample latency
    /// is measured cache-cold unless the path is explicitly the cached one).
    xs: Vec<Vec<f64>>,
    total_qubits: usize,
}

fn workload(name: &'static str, dims: usize, classes: usize, samples: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(dims as u64);
    let config = QuClassiConfig::qc_s(dims, classes);
    let total_qubits = config.total_qubits();
    let model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
    let xs: Vec<Vec<f64>> = (0..samples)
        .map(|s| {
            (0..dims)
                .map(|i| (0.05 + 0.09 * ((s * dims + i) % 11) as f64).min(0.95))
                .collect()
        })
        .collect();
    Workload {
        name,
        model,
        xs,
        total_qubits,
    }
}

/// The pre-compilation serving path: every `predict` call re-lowers the
/// class circuits, re-prepares every class state and re-encodes the sample.
fn serve_uncompiled(w: &Workload, estimator: &FidelityEstimator) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    let mut acc = 0;
    for x in &w.xs {
        acc += w.model.predict(x, estimator, &mut rng).unwrap();
    }
    acc
}

/// The compiled single-sample path (cache disabled: pure evaluation cost).
fn serve_compiled_single(w: &Workload, compiled: &CompiledModel) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    let mut acc = 0;
    for x in &w.xs {
        acc += compiled.predict(x, &mut rng).unwrap();
    }
    acc
}

/// The compiled batched path: one `predict_many` fan-out over the pool.
fn serve_compiled_batched(w: &Workload, compiled: &CompiledModel, batch: &BatchExecutor) -> usize {
    compiled
        .predict_many(&w.xs, batch, 0)
        .unwrap()
        .into_iter()
        .map(|p| p.label)
        .sum()
}

fn bench_serving_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_throughput");
    group.sample_size(12);
    for (dims, classes) in [(4usize, 3usize), (16, 2)] {
        let w = workload("shape", dims, classes, 8);
        let analytic = FidelityEstimator::analytic();
        group.bench_with_input(BenchmarkId::new("uncompiled_predict", dims), &w, |b, w| {
            b.iter(|| black_box(serve_uncompiled(w, &analytic)))
        });
        let compiled = CompiledModel::compile(&w.model, analytic.clone())
            .unwrap()
            .with_cache_capacity(0);
        group.bench_with_input(BenchmarkId::new("compiled_predict", dims), &w, |b, w| {
            b.iter(|| black_box(serve_compiled_single(w, &compiled)))
        });
        let batch = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
        group.bench_with_input(
            BenchmarkId::new("compiled_predict_many", dims),
            &w,
            |b, w| b.iter(|| black_box(serve_compiled_batched(w, &compiled, &batch))),
        );
    }
    group.finish();
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn emit_entry(
    w: &Workload,
    method: &str,
    estimator: &FidelityEstimator,
    reps: usize,
    batch: &BatchExecutor,
) -> String {
    let n = w.xs.len() as f64;
    let compiled = CompiledModel::compile(&w.model, estimator.clone())
        .unwrap()
        .with_cache_capacity(0);
    let cached = CompiledModel::compile(&w.model, estimator.clone()).unwrap();

    // Consistency guard: compiled and uncompiled serving must agree.
    {
        let mut rng = StdRng::seed_from_u64(0);
        for x in &w.xs {
            let a = w.model.predict_proba(x, estimator, &mut rng).unwrap();
            let b = compiled.predict_proba(x, &mut rng).unwrap();
            for (p, q) in a.iter().zip(b.iter()) {
                assert!((p - q).abs() < 1e-9, "paths disagree: {p} vs {q}");
            }
        }
    }

    let uncompiled_ns = median_ns(reps, || serve_uncompiled(w, estimator)) / n;
    let compiled_ns = median_ns(reps, || serve_compiled_single(w, &compiled)) / n;
    // Warm the fingerprint cache once, then measure repeated-input serving.
    serve_compiled_single(w, &cached);
    let cached_ns = median_ns(reps, || serve_compiled_single(w, &cached)) / n;
    let batched_ns = median_ns(reps, || serve_compiled_batched(w, &compiled, batch)) / n;

    format!(
        concat!(
            "    {{\"workload\": \"{}\", \"total_qubits\": {}, \"method\": \"{}\", ",
            "\"samples\": {}, \"uncompiled_single_ns\": {:.0}, \"compiled_single_ns\": {:.0}, ",
            "\"compiled_cached_ns\": {:.0}, \"compiled_batched_per_sample_ns\": {:.0}, ",
            "\"speedup_single\": {:.2}, \"speedup_cached\": {:.2}, \"speedup_batched\": {:.2}, ",
            "\"threads\": {}, \"hardware_bound\": {}}}"
        ),
        w.name,
        w.total_qubits,
        method,
        w.xs.len(),
        uncompiled_ns,
        compiled_ns,
        cached_ns,
        batched_ns,
        uncompiled_ns / compiled_ns,
        uncompiled_ns / cached_ns,
        uncompiled_ns / batched_ns,
        // The pool that actually ran the batched timings (QUCLASSI_THREADS
        // aware), not the machine's nominal parallelism. `hardware_bound`
        // marks a 1-worker pool: batched speedups are then pure
        // engine-overhead comparisons, not parallel scaling.
        batch.threads(),
        batch.threads() == 1
    )
}

fn emit_bench_json(smoke: bool) {
    let reps = if smoke { 1 } else { 30 };
    let batch = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
    let mut entries = Vec::new();
    for (name, dims, classes) in [
        ("iris_4_features", 4usize, 3usize),
        ("mnist_16_features", 16, 2),
    ] {
        let w = workload(name, dims, classes, 8);
        entries.push(emit_entry(
            &w,
            "analytic",
            &FidelityEstimator::analytic(),
            reps,
            &batch,
        ));
        entries.push(emit_entry(
            &w,
            "swap_test",
            &FidelityEstimator::swap_test(Executor::ideal()),
            reps,
            &batch,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"inference_throughput\",\n  \"smoke\": {},\n  \"reps\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        smoke,
        reps,
        entries.join(",\n")
    );
    if smoke {
        // Smoke runs exercise the paths but must not clobber the committed
        // perf-trajectory numbers with single-rep noise.
        println!("smoke mode: skipping BENCH_inference_throughput.json update");
    } else {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_inference_throughput.json"
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    print!("{json}");
}

criterion_group!(benches, bench_serving_paths);

fn main() {
    benches();
    let smoke = std::env::args().any(|a| a == "--test");
    emit_bench_json(smoke);
}
