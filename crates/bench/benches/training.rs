//! Training-cost benchmarks: one parameter-shift gradient step and one full
//! Iris training epoch, per architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclassi::prelude::*;
use quclassi_bench::data::iris_task;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_training_epoch(c: &mut Criterion) {
    let task = iris_task(3);
    let mut group = c.benchmark_group("iris_training_epoch");
    group.sample_size(10);
    for (name, config) in [
        ("QC-S", QuClassiConfig::qc_s(4, 3)),
        ("QC-SD", QuClassiConfig::qc_sd(4, 3)),
        ("QC-SDE", QuClassiConfig::qc_sde(4, 3)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let mut model =
                    QuClassiModel::with_random_parameters(config.clone(), &mut rng).unwrap();
                let trainer = Trainer::new(
                    TrainingConfig {
                        epochs: 1,
                        learning_rate: 0.05,
                        max_samples_per_class: Some(10),
                        ..Default::default()
                    },
                    FidelityEstimator::analytic(),
                );
                black_box(
                    trainer
                        .fit(
                            &mut model,
                            &task.train.features,
                            &task.train.labels,
                            &mut rng,
                        )
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_gradient_step(c: &mut Criterion) {
    use quclassi::gradient::parameter_shift_gradient;
    let task = iris_task(3);
    let x = task.train.features[0].clone();
    let mut group = c.benchmark_group("parameter_shift_gradient");
    for &dims in &[4usize, 8, 16] {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, dims).unwrap();
        let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
        let params: Vec<f64> = (0..stack.parameter_count())
            .map(|i| 0.1 * i as f64)
            .collect();
        let sample: Vec<f64> = (0..dims).map(|i| x[i % x.len()]).collect();
        let estimator = FidelityEstimator::analytic();
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let mut f = |p: &[f64]| {
                    estimator
                        .estimate(&stack, p, &encoder, &sample, &mut rng)
                        .unwrap()
                };
                black_box(parameter_shift_gradient(&mut f, &params, 0.5))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_epoch, bench_gradient_step);
criterion_main!(benches);
