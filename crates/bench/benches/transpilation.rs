//! Transpilation benchmarks: decomposing and routing the QuClassi SWAP-test
//! circuit onto sparse and all-to-all devices (Section 5.4's CNOT-count
//! comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::layers::LayerStack;
use quclassi::swap_test::build_swap_test_circuit;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::transpile::transpile;
use std::hint::black_box;

fn bench_transpile(c: &mut Criterion) {
    let encoder = DataEncoder::new(EncodingStrategy::DualAngle, 4).unwrap();
    let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
    let x = vec![0.2, 0.4, 0.6, 0.8];
    let (circuit, _) = build_swap_test_circuit(&stack, &encoder, &x).unwrap();
    let params: Vec<f64> = (0..stack.parameter_count())
        .map(|i| 0.3 * i as f64)
        .collect();
    let gates = circuit.bind(&params).unwrap();

    let mut group = c.benchmark_group("transpile_swap_test");
    for device in [
        DeviceModel::ionq(),
        DeviceModel::ibmq_cairo(),
        DeviceModel::ibmq_rome(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name.clone()),
            &device,
            |b, device| b.iter(|| black_box(transpile(&gates, &device.coupling).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transpile);
criterion_main!(benches);
