//! The serving-runtime benchmark: a closed-loop load generator driving
//! `quclassi-serve` across an offered-load sweep, comparing **per-request
//! serving** (`max_batch = 1` — what a naive server does) against
//! **dynamic micro-batching** (the scheduler drains whatever accumulated
//! while the previous batch was being computed).
//!
//! Each cell of the sweep runs N closed-loop producer threads (every
//! producer fires its next request the moment the previous one is
//! answered) for a fixed request count against one runtime, then reads
//! throughput and p50/p99 end-to-end latency from the runtime's own
//! histogram. Before any timing, every workload asserts that served
//! responses are **bit-identical** to direct `CompiledModel::predict_one`
//! calls — serving must never change an answer.
//!
//! A second axis sweeps **open connections** (100 / 1k / 10k mostly-idle
//! sockets) against both TCP frontends — the event-loop `WireServer` and
//! the thread-per-connection `ThreadedWireServer` — measuring connection
//! setup, round-trip latency through the crowd, and pipelined throughput.
//! The idle sockets are held by a child process (this binary re-executed
//! with `idle-client-helper`), so each process stays inside its own
//! `RLIMIT_NOFILE` budget: the server end of every connection lives here,
//! the client end in the child.
//!
//! Results go to `BENCH_serving_latency.json` at the workspace root;
//! `--test` runs everything once, tiny and untimed, without touching the
//! committed numbers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use quclassi::model::{QuClassiConfig, QuClassiModel};
use quclassi::swap_test::FidelityEstimator;
use quclassi::trainer::{Trainer, TrainingConfig};
use quclassi_datasets::stream::ReplayStream;
use quclassi_infer::CompiledModel;
use quclassi_serve::{
    OnlineConfig, OnlineLearner, ServeConfig, ServeRuntime, ThreadedWireServer, WireClient,
    WireConfig, WireServer,
};
use quclassi_sim::batch::BatchExecutor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Workload {
    name: &'static str,
    total_qubits: usize,
    model: QuClassiModel,
    /// Distinct probe samples, cycled by every producer.
    pool: Vec<Vec<f64>>,
}

fn workload(name: &'static str, dims: usize, classes: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(dims as u64);
    let config = QuClassiConfig::qc_s(dims, classes);
    let total_qubits = config.total_qubits();
    let model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
    let pool: Vec<Vec<f64>> = (0..16)
        .map(|s| {
            (0..dims)
                .map(|i| (0.05 + 0.09 * ((s * dims + i) % 11) as f64).min(0.95))
                .collect()
        })
        .collect();
    Workload {
        name,
        total_qubits,
        model,
        pool,
    }
}

/// Compiles the workload's model for serving with the fingerprint cache
/// off, so the load generator measures honest evaluation throughput
/// rather than cache hits.
fn artifact(w: &Workload) -> CompiledModel {
    CompiledModel::compile(&w.model, FidelityEstimator::analytic())
        .unwrap()
        .with_cache_capacity(0)
}

fn serve_config(micro_batched: bool) -> ServeConfig {
    ServeConfig {
        // Per-request baseline: every flush carries exactly one request.
        // Micro-batched: drain whatever accumulated (zero window — the
        // batch forms naturally while the previous flush computes, so no
        // idle wait is ever added).
        max_batch: if micro_batched { 64 } else { 1 },
        batch_window: Duration::ZERO,
        queue_capacity: 4096,
        base_seed: 0,
        ..ServeConfig::default()
    }
}

struct CellResult {
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_occupancy: f64,
}

/// One closed-loop measurement: `producers` threads, each issuing
/// `requests_per_producer` blocking predictions back to back.
fn run_cell(
    w: &Workload,
    micro_batched: bool,
    producers: usize,
    requests_per_producer: usize,
) -> CellResult {
    run_cell_with(
        serve_config(micro_batched),
        w,
        producers,
        requests_per_producer,
    )
}

/// `run_cell` with an explicit runtime config — the observability cell
/// needs to vary the trace-ring capacity against an otherwise identical
/// load.
fn run_cell_with(
    config: ServeConfig,
    w: &Workload,
    producers: usize,
    requests_per_producer: usize,
) -> CellResult {
    let runtime = ServeRuntime::start(
        config,
        BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
    )
    .unwrap();
    runtime.deploy("latency", artifact(w)).unwrap();
    let pool = Arc::new(w.pool.clone());

    let started = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|producer| {
            let client = runtime.client();
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut acc = 0usize;
                for i in 0..requests_per_producer {
                    let x = &pool[(producer * 5 + i) % pool.len()];
                    acc += client
                        .predict("latency", x)
                        .map(|r| r.prediction.label)
                        .unwrap_or_else(|_| {
                            unreachable!("closed-loop producers never saturate a 4096 queue")
                        });
                }
                acc
            })
        })
        .collect();
    let mut acc = 0usize;
    for handle in handles {
        acc += handle.join().unwrap();
    }
    black_box(acc);
    let elapsed = started.elapsed();
    let metrics = runtime.shutdown();
    let total = (producers * requests_per_producer) as f64;
    CellResult {
        throughput_rps: total / elapsed.as_secs_f64(),
        p50_us: metrics.latency.p50_us(),
        p99_us: metrics.latency.p99_us(),
        mean_batch_occupancy: metrics.mean_batch_occupancy(),
    }
}

/// Sustained capability of a cell: the best of `reps` closed-loop runs.
/// Each run is short (milliseconds), so a single OS scheduling hiccup on a
/// small container can halve one measurement; the max over repetitions is
/// what the configuration can sustain.
fn measure_cell(
    w: &Workload,
    micro_batched: bool,
    producers: usize,
    requests_per_producer: usize,
    reps: usize,
) -> CellResult {
    let mut best: Option<CellResult> = None;
    for _ in 0..reps {
        let r = run_cell(w, micro_batched, producers, requests_per_producer);
        best = match best {
            Some(b) if b.throughput_rps >= r.throughput_rps => Some(b),
            _ => Some(r),
        };
    }
    best.expect("reps >= 1")
}

/// Serving must not change answers: responses through the runtime are
/// bit-identical to direct compiled evaluation, for both serving modes.
fn assert_serving_consistency(w: &Workload) {
    let direct_artifact = artifact(w);
    let mut rng = StdRng::seed_from_u64(0);
    let direct: Vec<_> = w
        .pool
        .iter()
        .map(|x| direct_artifact.predict_one(x, &mut rng).unwrap())
        .collect();
    for micro_batched in [false, true] {
        let runtime = ServeRuntime::start(
            serve_config(micro_batched),
            BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
        )
        .unwrap();
        runtime.deploy("consistency", artifact(w)).unwrap();
        let client = runtime.client();
        for (x, want) in w.pool.iter().zip(direct.iter()) {
            let got = client.predict("consistency", x).unwrap();
            assert_eq!(
                &got.prediction, want,
                "served response diverged (micro_batched={micro_batched})"
            );
        }
        runtime.shutdown();
    }
}

fn bench_serving_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_latency");
    group.sample_size(10);
    for (dims, classes) in [(4usize, 3usize), (16, 2)] {
        let w = workload("roundtrip", dims, classes);
        let runtime = ServeRuntime::start(
            serve_config(true),
            BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
        )
        .unwrap();
        runtime.deploy("roundtrip", artifact(&w)).unwrap();
        let client = runtime.client();
        group.bench_with_input(BenchmarkId::new("predict_roundtrip", dims), &w, |b, w| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % w.pool.len();
                black_box(
                    client
                        .predict("roundtrip", &w.pool[i])
                        .unwrap()
                        .prediction
                        .label,
                )
            })
        });
        runtime.shutdown();
    }
    group.finish();
}

fn emit_cell_json(producers: usize, requests: usize, label: &str, r: &CellResult) -> String {
    format!(
        concat!(
            "        {{\"mode\": \"{}\", \"producers\": {}, \"requests\": {}, ",
            "\"throughput_rps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, ",
            "\"mean_batch_occupancy\": {:.2}}}"
        ),
        label, producers, requests, r.throughput_rps, r.p50_us, r.p99_us, r.mean_batch_occupancy
    )
}

fn emit_bench_json(smoke: bool) {
    let requests_per_producer = if smoke { 5 } else { 400 };
    let reps = if smoke { 1 } else { 3 };
    // The sweep starts at two producers: one closed-loop producer can never
    // have a second request in flight, so both modes degenerate to
    // identical per-request serving and the comparison measures nothing.
    let producer_sweep: &[usize] = if smoke { &[2] } else { &[2, 4, 8] };
    let executor = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
    let mut workload_entries = Vec::new();
    for (name, dims, classes) in [
        ("iris_4_features", 4usize, 3usize),
        ("mnist_16_features", 16, 2),
    ] {
        let mut w = workload("latency", dims, classes);
        w.name = "latency";
        assert_serving_consistency(&Workload {
            name: "consistency",
            total_qubits: w.total_qubits,
            model: w.model.clone(),
            pool: w.pool.clone(),
        });
        let mut cells = Vec::new();
        let mut max_load_gain = 0.0f64;
        for &producers in producer_sweep {
            // Warm-up pass so thread spawn and first-touch costs are not
            // attributed to either mode.
            run_cell(&w, true, producers, requests_per_producer / 5 + 1);
            run_cell(&w, false, producers, requests_per_producer / 5 + 1);
            let baseline = measure_cell(&w, false, producers, requests_per_producer, reps);
            let batched = measure_cell(&w, true, producers, requests_per_producer, reps);
            max_load_gain = batched.throughput_rps / baseline.throughput_rps;
            let total = producers * requests_per_producer;
            cells.push(emit_cell_json(producers, total, "per_request", &baseline));
            cells.push(emit_cell_json(producers, total, "micro_batched", &batched));
        }
        workload_entries.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"total_qubits\": {}, \"method\": \"analytic\", ",
                "\"threads\": {}, \"throughput_gain_at_max_load\": {:.2},\n",
                "      \"sweep\": [\n{}\n      ]}}"
            ),
            name,
            w.total_qubits,
            executor.threads(),
            max_load_gain,
            cells.join(",\n")
        ));
    }
    let connections = emit_connections_json(smoke);
    let online = emit_online_json(smoke);
    let observability = emit_observability_json(smoke);
    let json = format!(
        "{{\n  \"bench\": \"serving_latency\",\n  \"smoke\": {},\n  \"requests_per_producer\": {},\n{}\n{}\n{}\n  \"workloads\": [\n{}\n  ]\n}}\n",
        smoke,
        requests_per_producer,
        connections,
        online,
        observability,
        workload_entries.join(",\n")
    );
    if smoke {
        // Smoke runs exercise the full load-generator path but must not
        // clobber the committed perf-trajectory numbers with tiny-run noise.
        println!("smoke mode: skipping BENCH_serving_latency.json update");
    } else {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serving_latency.json"
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    print!("{json}");
}

/// One closed-loop measurement with an `OnlineLearner` training, shadowing
/// and promoting concurrently on the same machine — the steady-state cost
/// of train-while-serve. Producers hammer the runtime for as long as the
/// learner's `max_cycles` take, so the measurement window is wall-to-wall
/// concurrent training. Returns the cell plus requests answered and the
/// learner-side counters.
fn run_online_cell(
    w: &Workload,
    producers: usize,
    max_cycles: u64,
) -> (CellResult, usize, u64, u64) {
    let runtime = ServeRuntime::start(
        serve_config(true),
        BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
    )
    .unwrap();
    runtime.deploy("latency", artifact(w)).unwrap();
    // Replayed MNIST 3-vs-6, average-pooled to a 4×4 grid — the
    // workload's 16 features.
    let stream = ReplayStream::mnist_pair(3, 6, 64, 4, 11);
    let trainer = Trainer::new(
        TrainingConfig {
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let learner = OnlineLearner::start(
        &runtime,
        "latency",
        w.model.clone(),
        trainer,
        stream,
        OnlineConfig {
            window: 16,
            epochs_per_cycle: 1,
            shadow_rate: 1.0,
            min_shadow_requests: 4,
            shadow_wait: Duration::from_secs(2),
            promote_min_accuracy: 0.5,
            accuracy_tolerance: 1.0,
            max_p99_ratio: 1e6, // measure the penalty, don't gate on it
            rollback_min_accuracy: 0.0,
            max_cycles: Some(max_cycles),
            seed: 7,
            ..Default::default()
        },
    )
    .unwrap();

    let pool = Arc::new(w.pool.clone());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|producer| {
            let client = runtime.client();
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut answered = 0usize;
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let x = &pool[(producer * 5 + i) % pool.len()];
                    black_box(
                        client
                            .predict("latency", x)
                            .map(|r| r.prediction.label)
                            .unwrap_or_else(|_| {
                                unreachable!("closed-loop producers never saturate a 4096 queue")
                            }),
                    );
                    answered += 1;
                    i += 1;
                }
                answered
            })
        })
        .collect();
    let report = learner.join();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let answered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = started.elapsed();
    let metrics = runtime.shutdown();
    (
        CellResult {
            throughput_rps: answered as f64 / elapsed.as_secs_f64(),
            p50_us: metrics.latency.p50_us(),
            p99_us: metrics.latency.p99_us(),
            mean_batch_occupancy: metrics.mean_batch_occupancy(),
        },
        answered,
        metrics.train_cycles,
        report.promotions(),
    )
}

/// The train-while-serve penalty on the 17-qubit MNIST shape: identical
/// closed-loop load with and without a concurrent online learner.
fn emit_online_json(smoke: bool) -> String {
    let producers = 2;
    let requests_per_producer = if smoke { 10 } else { 400 };
    let max_cycles = if smoke { 1 } else { 3 };
    let w = workload("latency", 16, 2);
    // Warm-up, then baseline without any training alongside.
    run_cell(&w, true, producers, requests_per_producer / 5 + 1);
    let baseline = run_cell(&w, true, producers, requests_per_producer);
    let (online, answered, train_cycles, promotions) = run_online_cell(&w, producers, max_cycles);
    format!(
        concat!(
            "  \"online_penalty\": {{\"workload\": \"mnist_16_features\", \"total_qubits\": {}, ",
            "\"producers\": {}, \"train_cycles\": {}, \"promotions\": {},\n",
            "    \"throughput_penalty\": {:.2}, \"p99_inflation\": {:.2},\n",
            "    \"cells\": [\n{},\n{}\n    ]}},"
        ),
        w.total_qubits,
        producers,
        train_cycles,
        promotions,
        baseline.throughput_rps / online.throughput_rps.max(1e-9),
        online.p99_us / baseline.p99_us.max(1e-9),
        emit_cell_json(
            producers,
            producers * requests_per_producer,
            "serve_only",
            &baseline
        ),
        emit_cell_json(producers, answered, "serve_while_training", &online)
    )
}

/// The cost of observability itself: identical closed-loop load with the
/// trace ring disabled (`trace_capacity = 0`), with tracing + the metrics
/// registry live (the default), and with kernel profiling forced on —
/// the three states a deployment can run in. The contract: tracing and
/// the registry cost within noise of disabled, and with
/// `QUCLASSI_PROFILE` off the kernel hooks are indistinguishable no-ops.
fn emit_observability_json(smoke: bool) -> String {
    let producers = 4;
    let requests_per_producer = if smoke { 10 } else { 400 };
    let reps = if smoke { 1 } else { 5 };
    let w = workload("latency", 4, 3);
    let config_for = |trace_capacity: usize| ServeConfig {
        trace_capacity,
        ..serve_config(true)
    };
    // The three states are compared *interleaved*, one rep of each per
    // round, not state-by-state: the differences under test are a few
    // percent, far below the drift a shared machine shows between two
    // back-to-back measurement blocks, so any sequential ordering would
    // attribute warm-up and scheduling noise to whichever state ran
    // first. Best-of-reps per state, as elsewhere in this bench.
    // Profiling is toggled around its own runs only — every other
    // measurement keeps the kernel hooks in their default no-op state.
    let states: [(usize, bool); 3] = [
        (0, false),
        (quclassi_serve::DEFAULT_TRACE_CAPACITY, false),
        (quclassi_serve::DEFAULT_TRACE_CAPACITY, true),
    ];
    let mut best: [Option<CellResult>; 3] = [None, None, None];
    for rep in 0..=reps {
        for (i, &(trace_capacity, profiled)) in states.iter().enumerate() {
            quclassi_sim::profile::set_enabled(profiled);
            let r = run_cell_with(
                config_for(trace_capacity),
                &w,
                producers,
                requests_per_producer,
            );
            quclassi_sim::profile::set_enabled(false);
            if rep == 0 {
                continue; // round 0 is warm-up for all three states
            }
            best[i] = match best[i].take() {
                Some(b) if b.throughput_rps >= r.throughput_rps => Some(b),
                _ => Some(r),
            };
        }
    }
    let [disabled, enabled, profiled] = best.map(|b| b.expect("reps >= 1"));
    let total = producers * requests_per_producer;
    format!(
        concat!(
            "  \"observability_overhead\": {{\"workload\": \"iris_4_features\", ",
            "\"producers\": {}, \"trace_capacity\": {},\n",
            "    \"enabled_vs_disabled_throughput\": {:.3}, ",
            "\"profiled_vs_disabled_throughput\": {:.3},\n",
            "    \"cells\": [\n{},\n{},\n{}\n    ]}},"
        ),
        producers,
        quclassi_serve::DEFAULT_TRACE_CAPACITY,
        enabled.throughput_rps / disabled.throughput_rps.max(1e-9),
        profiled.throughput_rps / disabled.throughput_rps.max(1e-9),
        emit_cell_json(producers, total, "tracing_disabled", &disabled),
        emit_cell_json(producers, total, "tracing_and_registry", &enabled),
        emit_cell_json(producers, total, "kernel_profiling_on", &profiled)
    )
}

/// Child-process mode: hold `count` idle client connections to `addr`
/// until stdin closes. Keeps the client end of the connection sweep in a
/// separate fd namespace so 10k connections never collide with the
/// parent's `RLIMIT_NOFILE`.
fn run_idle_client_helper(addr: &str, count: usize) {
    let addr: SocketAddr = addr.parse().expect("helper addr");
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        match TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(e) => {
                // Report the shortfall instead of dying: the parent
                // records how many connections the server actually held.
                eprintln!("helper: connect {i}/{count} failed: {e}");
                break;
            }
        }
    }
    println!("ready {}", held.len());
    std::io::stdout().flush().ok();
    // Park until the parent is done measuring (stdin EOF), then drop the
    // herd all at once.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).is_ok_and(|n| n > 0) {
        sink.clear();
    }
    drop(held);
}

/// Spawns the helper child and waits for its herd to be fully connected.
/// Returns the child and how many sockets it holds.
fn spawn_idle_herd(addr: SocketAddr, count: usize) -> (std::process::Child, usize) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .arg("idle-client-helper")
        .arg(addr.to_string())
        .arg(count.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn idle-client helper");
    let stdout = child.stdout.take().expect("helper stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("helper ready line");
    let held = line
        .trim()
        .strip_prefix("ready ")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    (child, held)
}

struct WireCell {
    setup_ms: f64,
    held: usize,
    refusals: u64,
    p50_us: f64,
    p99_us: f64,
    pipelined_rps: f64,
}

/// Either TCP frontend, unified for the sweep.
enum AnyServer {
    EventLoop(WireServer),
    Threaded(ThreadedWireServer),
}

impl AnyServer {
    fn start(event_loop: bool, client: quclassi_serve::Client, config: WireConfig) -> Self {
        if event_loop {
            AnyServer::EventLoop(WireServer::start_with("127.0.0.1:0", client, config).unwrap())
        } else {
            AnyServer::Threaded(
                ThreadedWireServer::start_with("127.0.0.1:0", client, config).unwrap(),
            )
        }
    }

    fn local_addr(&self) -> SocketAddr {
        match self {
            AnyServer::EventLoop(s) => s.local_addr(),
            AnyServer::Threaded(s) => s.local_addr(),
        }
    }

    fn shutdown(self) {
        match self {
            AnyServer::EventLoop(s) => s.shutdown(),
            AnyServer::Threaded(s) => s.shutdown(),
        }
    }
}

/// One cell of the connection sweep: `connections` idle sockets held by
/// the child, then round-trip latency and pipelined throughput measured
/// through the crowd from this process.
fn run_wire_cell(
    w: &Workload,
    event_loop: bool,
    connections: usize,
    roundtrips: usize,
    pipelined: usize,
) -> WireCell {
    let runtime = ServeRuntime::start(
        serve_config(true),
        BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
    )
    .unwrap();
    runtime.deploy("wire", artifact(w)).unwrap();
    let config = WireConfig {
        max_connections: connections + 64,
        // The herd is deliberately idle; a read deadline would reap it
        // mid-measurement.
        read_timeout: None,
        write_timeout: Some(Duration::from_secs(30)),
        shards: 2,
    };
    let server = AnyServer::start(event_loop, runtime.client(), config);
    let addr = server.local_addr();

    let setup_started = Instant::now();
    let (mut child, held) = spawn_idle_herd(addr, connections);
    let setup_ms = setup_started.elapsed().as_secs_f64() * 1e3;

    // Round-trip latency through the idle crowd, measured client-side.
    let mut wire = WireClient::connect(addr).unwrap();
    let x = &w.pool[0];
    wire.predict("wire", x).unwrap(); // warm the connection
    let mut samples_us = Vec::with_capacity(roundtrips);
    for i in 0..roundtrips {
        let x = &w.pool[i % w.pool.len()];
        let t = Instant::now();
        wire.predict("wire", x).unwrap();
        samples_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| samples_us[((samples_us.len() - 1) as f64 * p) as usize];

    // Pipelined throughput: fire a burst without reading, then drain.
    let t = Instant::now();
    for i in 0..pipelined {
        wire.send_predict("wire", &w.pool[i % w.pool.len()])
            .unwrap();
    }
    for _ in 0..pipelined {
        let (_, response) = wire.recv_response().unwrap();
        assert_eq!(
            response
                .get("ok")
                .and_then(quclassi_serve::json::Json::as_bool),
            Some(true)
        );
    }
    let pipelined_rps = pipelined as f64 / t.elapsed().as_secs_f64();

    let refusals = runtime.metrics().wire_refusals;
    drop(child.stdin.take()); // EOF → the child drops its herd and exits
    let _ = child.wait();
    server.shutdown();
    runtime.shutdown();
    WireCell {
        setup_ms,
        held,
        refusals,
        p50_us: q(0.50),
        p99_us: q(0.99),
        pipelined_rps,
    }
}

fn emit_wire_cell_json(server: &str, connections: usize, r: &WireCell) -> String {
    format!(
        concat!(
            "        {{\"server\": \"{}\", \"connections\": {}, \"held\": {}, ",
            "\"refusals\": {}, \"setup_ms\": {:.1}, \"p50_us\": {:.1}, ",
            "\"p99_us\": {:.1}, \"pipelined_rps\": {:.0}}}"
        ),
        server, connections, r.held, r.refusals, r.setup_ms, r.p50_us, r.p99_us, r.pipelined_rps
    )
}

/// The connection-count sweep: both TCP frontends, 100/1k/10k mostly-idle
/// sockets, one active client measuring through the crowd.
fn emit_connections_json(smoke: bool) -> String {
    let connection_sweep: &[usize] = if smoke { &[50] } else { &[100, 1_000, 10_000] };
    let roundtrips = if smoke { 20 } else { 2_000 };
    let pipelined = if smoke { 16 } else { 1_024 };
    let w = workload("wire", 4, 3);
    let mut cells = Vec::new();
    for &connections in connection_sweep {
        for (label, event_loop) in [("event_loop", true), ("thread_per_conn", false)] {
            let r = run_wire_cell(&w, event_loop, connections, roundtrips, pipelined);
            cells.push(emit_wire_cell_json(label, connections, &r));
        }
    }
    format!(
        "  \"connections_sweep\": {{\"workload\": \"iris_4_features\", \"roundtrips\": {}, \"pipelined_burst\": {},\n    \"cells\": [\n{}\n    ]}},",
        roundtrips,
        pipelined,
        cells.join(",\n")
    )
}

criterion_group!(benches, bench_serving_roundtrip);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("idle-client-helper") {
        run_idle_client_helper(&args[2], args[3].parse().expect("helper count"));
        return;
    }
    // Re-measure the observability cell alone (it is by far the cheapest
    // section; splice the printed object into BENCH_serving_latency.json
    // by hand when refreshing it in isolation).
    if args.iter().any(|a| a == "observability-only") {
        println!(
            "{}",
            emit_observability_json(quclassi_bench::runtime::quick())
        );
        return;
    }
    benches();
    // QUCLASSI_QUICK forces smoke sizing even without `--test`, so CI can
    // exercise the full load-generator path in seconds without clobbering
    // the committed numbers.
    let smoke = std::env::args().any(|a| a == "--test") || quclassi_bench::runtime::quick();
    emit_bench_json(smoke);
}
