//! Fidelity-estimation benchmarks: the analytic inner-product path vs the
//! full SWAP-test circuit (DESIGN.md §7 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::layers::LayerStack;
use quclassi::swap_test::FidelityEstimator;
use quclassi_sim::executor::Executor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fidelity_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("fidelity_estimation");
    for &dims in &[4usize, 8, 16] {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, dims).unwrap();
        let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
        let params: Vec<f64> = (0..stack.parameter_count())
            .map(|i| 0.2 + 0.1 * i as f64)
            .collect();
        let x: Vec<f64> = (0..dims)
            .map(|i| (i as f64 + 0.5) / (dims as f64 + 1.0))
            .collect();

        group.bench_with_input(BenchmarkId::new("analytic", dims), &dims, |b, _| {
            let estimator = FidelityEstimator::analytic();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(
                    estimator
                        .estimate(&stack, &params, &encoder, &x, &mut rng)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("swap_test", dims), &dims, |b, _| {
            let estimator = FidelityEstimator::swap_test(Executor::ideal());
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(
                    estimator
                        .estimate(&stack, &params, &encoder, &x, &mut rng)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fidelity_methods);
criterion_main!(benches);
