//! Simulator micro-benchmarks: state-vector gate application and full
//! QuClassi SWAP-test circuit execution as the register grows from the
//! 5-qubit Iris circuit to the 17-qubit MNIST circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::layers::LayerStack;
use quclassi::swap_test::build_swap_test_circuit;
use quclassi_sim::gate::Gate;
use quclassi_sim::state::StateVector;
use std::hint::black_box;

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gate_layer");
    for &qubits in &[5usize, 9, 13, 17] {
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, &n| {
            b.iter(|| {
                let mut sv = StateVector::zero_state(n);
                for q in 0..n {
                    sv.apply_gate(&Gate::Ry(q, 0.3)).unwrap();
                }
                for q in 0..n - 1 {
                    sv.apply_gate(&Gate::Cnot {
                        control: q,
                        target: q + 1,
                    })
                    .unwrap();
                }
                black_box(sv.norm_sqr())
            })
        });
    }
    group.finish();
}

fn bench_swap_test_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_test_circuit");
    for &dims in &[4usize, 8, 16] {
        let encoder = DataEncoder::new(EncodingStrategy::DualAngle, dims).unwrap();
        let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
        let x: Vec<f64> = (0..dims)
            .map(|i| (i as f64 + 1.0) / (dims as f64 + 1.0))
            .collect();
        let (circuit, layout) = build_swap_test_circuit(&stack, &encoder, &x).unwrap();
        let params: Vec<f64> = (0..stack.parameter_count())
            .map(|i| 0.1 * i as f64)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("qubits", layout.total_qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let sv = circuit.execute(&params).unwrap();
                    black_box(sv.probability_of_one(layout.ancilla).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gate_application, bench_swap_test_circuit);
criterion_main!(benches);
