//! The execution-engine benchmark: gate-fused, batch-dispatched SWAP-test
//! evaluation against the unfused sequential path it replaced.
//!
//! The workload is the training hot path: one parameter-shift step's worth
//! of fidelity evaluations (`2·P + 1` parameter vectors) of the QuClassi
//! SWAP-test circuit. The headline size is the 8-feature configuration —
//! two 4-qubit registers plus the ancilla — flanked by the 4-feature Iris
//! and 16-feature MNIST shapes.
//!
//! Besides the criterion timings, the binary records the measured speedups
//! to `BENCH_batched_execution.json` at the workspace root so the perf
//! trajectory is tracked across PRs. `--test` runs everything once, untimed
//! (JSON reports a single smoke repetition).
//!
//! The **within-circuit sweep** measures the intra-statevector parallel
//! kernels on the paper's defining operation: one shot-faithful SWAP-test
//! evaluation at the 17-qubit MNIST shape, swept over
//! `QUCLASSI_INTRA_THREADS`-style budgets of 1/2/4/8 workers. The sweep
//! also asserts the determinism contract — the measured probability is
//! bit-identical at every thread count. The reported speedup is
//! hardware-bound (the JSON records the machine's available parallelism
//! next to it; on a single-core runner the honest number is ≈ 1×).

use criterion::{criterion_group, BenchmarkId, Criterion};
use quclassi::encoding::{DataEncoder, EncodingStrategy};
use quclassi::gradient::shifted_parameter_sets;
use quclassi::layers::LayerStack;
use quclassi::swap_test::{build_swap_test_circuit, fidelity_from_p0, FidelityEstimator};
use quclassi_sim::batch::BatchExecutor;
use quclassi_sim::executor::Executor;
use quclassi_sim::fusion::FusedCircuit;
use quclassi_sim::intra::IntraThreads;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Intra-circuit worker counts swept at the MNIST shape.
const INTRA_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    stack: LayerStack,
    encoder: DataEncoder,
    x: Vec<f64>,
    /// Base parameters plus every parameter-shift neighbour (2·P + 1 sets).
    sets: Vec<Vec<f64>>,
    total_qubits: usize,
}

fn workload(dims: usize) -> Workload {
    let encoder = DataEncoder::new(EncodingStrategy::DualAngle, dims).unwrap();
    let stack = LayerStack::qc_s(encoder.num_qubits()).unwrap();
    let x: Vec<f64> = (0..dims)
        .map(|i| (i as f64 + 1.0) / (dims as f64 + 1.0))
        .collect();
    let params: Vec<f64> = (0..stack.parameter_count())
        .map(|i| 0.15 + 0.1 * i as f64)
        .collect();
    let mut sets = vec![params.clone()];
    sets.extend(shifted_parameter_sets(&params, std::f64::consts::FRAC_PI_2));
    let total_qubits = 2 * stack.num_qubits() + 1;
    Workload {
        stack,
        encoder,
        x,
        sets,
        total_qubits,
    }
}

/// The pre-fusion hot path: rebuild the SWAP-test circuit and walk it
/// gate-by-gate for every single evaluation, exactly as
/// `FidelityEstimator::estimate` must when called in a loop.
fn eval_unfused_sequential(w: &Workload) -> f64 {
    let executor = Executor::ideal();
    let mut rng = StdRng::seed_from_u64(0);
    let mut acc = 0.0;
    for params in &w.sets {
        let (circuit, layout) = build_swap_test_circuit(&w.stack, &w.encoder, &w.x).unwrap();
        let p1 = executor
            .probability_of_one(&circuit, params, layout.ancilla, &mut rng)
            .unwrap();
        acc += fidelity_from_p0(1.0 - p1);
    }
    acc
}

/// The engine path: compile once, evaluate every parameter set through the
/// fused program via the batch executor.
fn eval_fused_batched(w: &Workload, batch: &BatchExecutor) -> f64 {
    FidelityEstimator::swap_test(Executor::ideal())
        .estimate_many(&w.stack, &w.sets, &w.encoder, &w.x, batch, 0)
        .unwrap()
        .into_iter()
        .sum()
}

/// One compiled single-request SWAP-test evaluation — the serving-shape
/// unit of work the intra-circuit kernels target (no across-circuit
/// batching to hide behind).
struct SingleEval {
    fused: FusedCircuit,
    ancilla: usize,
    params: Vec<f64>,
}

fn single_eval(w: &Workload) -> SingleEval {
    let (circuit, layout) = build_swap_test_circuit(&w.stack, &w.encoder, &w.x).unwrap();
    SingleEval {
        fused: FusedCircuit::compile(&circuit),
        ancilla: layout.ancilla,
        params: w.sets[0].clone(),
    }
}

fn eval_single(e: &SingleEval, executor: &Executor) -> f64 {
    let mut rng = StdRng::seed_from_u64(0);
    let p1 = executor
        .probability_of_one_compiled(&e.fused, &e.params, e.ancilla, &mut rng)
        .unwrap();
    fidelity_from_p0(1.0 - p1)
}

fn intra_executor(threads: usize) -> Executor {
    Executor::ideal().with_intra(IntraThreads::new(threads))
}

fn bench_execution_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_execution");
    group.sample_size(12);
    for dims in [4usize, 8, 16] {
        let w = workload(dims);
        group.bench_with_input(BenchmarkId::new("unfused_sequential", dims), &w, |b, w| {
            b.iter(|| black_box(eval_unfused_sequential(w)))
        });
        let single = BatchExecutor::single_threaded(0);
        group.bench_with_input(BenchmarkId::new("fused", dims), &w, |b, w| {
            b.iter(|| black_box(eval_fused_batched(w, &single)))
        });
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pooled = BatchExecutor::new(threads, 0);
        group.bench_with_input(BenchmarkId::new("fused_batched", dims), &w, |b, w| {
            b.iter(|| black_box(eval_fused_batched(w, &pooled)))
        });
        if dims == 16 {
            // Within-circuit sweep at the 17-qubit MNIST SWAP-test shape:
            // a single evaluation with 1 vs 8 intra-circuit workers.
            let e = single_eval(&w);
            for intra in [1usize, 8] {
                let executor = intra_executor(intra);
                group.bench_with_input(
                    BenchmarkId::new(format!("single_eval_intra_{intra}"), dims),
                    &e,
                    |b, e| b.iter(|| black_box(eval_single(e, &executor))),
                );
            }
        }
    }
    group.finish();
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn emit_bench_json(smoke: bool) {
    let reps = if smoke { 1 } else { 30 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pooled = BatchExecutor::new(threads, 0);
    let single = BatchExecutor::single_threaded(0);
    let mut entries = Vec::new();
    for dims in [4usize, 8, 16] {
        let w = workload(dims);
        // Consistency guard: all three paths must report the same physics.
        let a = eval_unfused_sequential(&w);
        let b = eval_fused_batched(&w, &single);
        assert!((a - b).abs() < 1e-9, "paths disagree: {a} vs {b}");
        let unfused = median_ns(reps, || eval_unfused_sequential(&w));
        let fused = median_ns(reps, || eval_fused_batched(&w, &single));
        let batched = median_ns(reps, || eval_fused_batched(&w, &pooled));
        let intra_sweep = if dims == 16 {
            // Within-circuit sweep at the 17-qubit MNIST SWAP-test shape.
            let e = single_eval(&w);
            // Determinism guard: the intra thread count must not change a
            // single bit of the measured fidelity.
            let reference = eval_single(&e, &intra_executor(1));
            let mut points = Vec::new();
            let mut by_threads = Vec::new();
            for intra in INTRA_SWEEP {
                let executor = intra_executor(intra);
                let value = eval_single(&e, &executor);
                assert_eq!(
                    value.to_bits(),
                    reference.to_bits(),
                    "intra={intra} changed the answer"
                );
                let ns = median_ns(reps, || eval_single(&e, &executor));
                by_threads.push((intra, ns));
                points.push(format!(
                    "{{\"intra_threads\": {intra}, \"single_eval_ns\": {ns:.0}}}"
                ));
            }
            let seq = by_threads[0].1;
            let at8 = by_threads.last().expect("sweep is non-empty").1;
            // `hardware_bound` flags the sweep as machine-limited: on a
            // single-core runner every intra budget multiplexes onto one
            // CPU, so the honest speedup ceiling is 1× and the numbers
            // measure overhead, not scaling.
            format!(
                ", \"intra_sweep\": [{}], \"speedup_intra_8\": {:.2}, \"cores\": {}, \
                 \"hardware_bound\": {}",
                points.join(", "),
                seq / at8,
                threads,
                threads == 1
            )
        } else {
            String::new()
        };
        entries.push(format!(
            concat!(
                "    {{\"workload\": \"swap_test_{}_features\", \"total_qubits\": {}, ",
                "\"evaluations\": {}, \"unfused_sequential_ns\": {:.0}, \"fused_ns\": {:.0}, ",
                "\"fused_batched_ns\": {:.0}, \"speedup_fused\": {:.2}, ",
                "\"speedup_batched\": {:.2}, \"threads\": {}{}}}"
            ),
            dims,
            w.total_qubits,
            w.sets.len(),
            unfused,
            fused,
            batched,
            unfused / fused,
            unfused / batched,
            threads,
            intra_sweep
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"batched_execution\",\n  \"smoke\": {},\n  \"reps\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        smoke,
        reps,
        entries.join(",\n")
    );
    if smoke {
        // Smoke runs exercise the paths but must not clobber the committed
        // perf-trajectory numbers with single-rep noise.
        println!("smoke mode: skipping BENCH_batched_execution.json update");
    } else {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_batched_execution.json"
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    print!("{json}");
}

criterion_group!(benches, bench_execution_paths);

fn main() {
    benches();
    let smoke = std::env::args().any(|a| a == "--test");
    emit_bench_json(smoke);
}
