//! Activation functions and their derivatives for the classical baseline
//! networks.

/// Supported activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity (linear) activation.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation expressed in terms of the *pre-activation*
    /// input `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
        }
    }

    /// Applies the activation to a whole slice, returning a new vector.
    pub fn apply_vec(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

/// Numerically stable softmax over a slice of logits.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Linear.apply(-2.5), -2.5);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
        ] {
            for &x in &[-1.3f64, -0.2, 0.4, 1.7] {
                // Skip the ReLU kink.
                if act == Activation::Relu && x.abs() < 1e-3 {
                    continue;
                }
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (numeric - act.derivative(x)).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {}",
                    act.derivative(x)
                );
            }
        }
    }

    #[test]
    fn apply_vec_maps_elementwise() {
        let out = Activation::Relu.apply_vec(&[-1.0, 2.0, -3.0]);
        assert_eq!(out, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn softmax_properties() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
        // Large logits do not overflow.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
