//! # quclassi-classical
//!
//! Classical machine-learning substrates for the QuClassi reproduction:
//!
//! * [`network`] — the "DNN-kP" fully-connected baselines the paper compares
//!   against (one hidden layer, softmax output, per-sample SGD), with the
//!   parameter-count-targeting constructor used to build DNN-12 … DNN-1308;
//! * [`pca`] — principal component analysis used to reduce MNIST's 784
//!   dimensions to 16 (simulation) or 4 (hardware experiments);
//! * [`matrix`], [`activation`], [`eigen`] — the small linear-algebra and
//!   activation utilities those are built on.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod eigen;
pub mod matrix;
pub mod network;
pub mod pca;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::network::{Mlp, MlpConfig, MlpEpochStats};
    pub use crate::pca::Pca;
}
