//! A small fully-connected neural network with softmax output and SGD
//! training — the classical "DNN-kP" baselines the paper compares against
//! (Figs. 6b, 6c, 9, 10).
//!
//! The paper describes these baselines as one-hidden-layer networks with a
//! softmax output, trained by stochastic gradient descent on the same
//! normalised data that QuClassi consumes, and labels them by their total
//! parameter count (e.g. DNN-56, DNN-1218). [`MlpConfig::with_target_params`]
//! reproduces that naming: it searches for the hidden width whose parameter
//! count is closest to the requested target.

use crate::activation::{softmax, Activation};
use rand::Rng;

/// One dense (fully-connected) layer.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseLayer {
    input_dim: usize,
    output_dim: usize,
    /// Row-major weights: `output_dim × input_dim`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with weights drawn from a scaled uniform distribution
    /// (Xavier-style: ±√(6 / (in + out))).
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (input_dim + output_dim) as f64).sqrt();
        let weights = (0..input_dim * output_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        DenseLayer {
            input_dim,
            output_dim,
            weights,
            biases: vec![0.0; output_dim],
            activation,
        }
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Pre-activation outputs `W·x + b`.
    fn pre_activation(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(
            input.len(),
            self.input_dim,
            "layer input dimension mismatch"
        );
        (0..self.output_dim)
            .map(|o| {
                let row = &self.weights[o * self.input_dim..(o + 1) * self.input_dim];
                row.iter()
                    .zip(input.iter())
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + self.biases[o]
            })
            .collect()
    }

    /// Forward pass.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.activation.apply_vec(&self.pre_activation(input))
    }
}

/// Configuration of a multi-layer perceptron.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a softmax regression).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Hidden-layer activation.
    pub activation: Activation,
}

impl MlpConfig {
    /// A single-hidden-layer configuration (the paper's baseline shape).
    pub fn single_hidden(input_dim: usize, hidden: usize, num_classes: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: vec![hidden],
            num_classes,
            activation: Activation::Relu,
        }
    }

    /// Total parameter count of the configuration.
    pub fn parameter_count(&self) -> usize {
        let mut dims = vec![self.input_dim];
        dims.extend_from_slice(&self.hidden);
        dims.push(self.num_classes);
        dims.windows(2).map(|w| (w[0] + 1) * w[1]).sum()
    }

    /// Finds the single-hidden-layer configuration whose parameter count is
    /// closest to `target_params` — how the paper's DNN-kP baselines are
    /// specified. Returns the configuration and its exact parameter count.
    pub fn with_target_params(
        input_dim: usize,
        num_classes: usize,
        target_params: usize,
    ) -> (Self, usize) {
        let mut best: Option<(Self, usize)> = None;
        for hidden in 1..=512 {
            let cfg = MlpConfig::single_hidden(input_dim, hidden, num_classes);
            let count = cfg.parameter_count();
            let better = match &best {
                None => true,
                Some((_, existing)) => {
                    (count as i64 - target_params as i64).abs()
                        < (*existing as i64 - target_params as i64).abs()
                }
            };
            if better {
                best = Some((cfg, count));
            }
            if count > 4 * target_params + 64 {
                break;
            }
        }
        best.expect("hidden widths 1..=512 always produce at least one candidate")
    }
}

/// A multi-layer perceptron with softmax output trained by SGD on the
/// cross-entropy loss.
#[derive(Clone, Debug, PartialEq)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseLayer>,
}

/// Per-epoch training statistics of the classical baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpEpochStats {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Mean cross-entropy loss over the training set.
    pub loss: f64,
    /// Accuracy on the evaluation set, when supplied.
    pub eval_accuracy: Option<f64>,
}

impl Mlp {
    /// Creates a network with random weights.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        assert!(config.input_dim > 0, "input dimension must be positive");
        assert!(config.num_classes >= 2, "need at least two classes");
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.num_classes);
        let mut layers = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            let is_output = i == dims.len() - 2;
            let act = if is_output {
                Activation::Linear
            } else {
                config.activation
            };
            layers.push(DenseLayer::new(w[0], w[1], act, rng));
        }
        Mlp { config, layers }
    }

    /// The network configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Class probabilities for one input (softmax over the output logits).
    pub fn predict_proba(&self, input: &[f64]) -> Vec<f64> {
        let mut activations = input.to_vec();
        for layer in &self.layers {
            activations = layer.forward(&activations);
        }
        softmax(&activations)
    }

    /// Predicted class label.
    pub fn predict(&self, input: &[f64]) -> usize {
        self.predict_proba(input)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a labelled set.
    pub fn evaluate_accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels.iter())
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }

    /// Cross-entropy loss of one sample.
    pub fn sample_loss(&self, input: &[f64], label: usize) -> f64 {
        let p = self.predict_proba(input);
        -(p.get(label).copied().unwrap_or(0.0).max(1e-12)).ln()
    }

    /// One SGD update on a single sample; returns the pre-update loss.
    pub fn train_sample(&mut self, input: &[f64], label: usize, learning_rate: f64) -> f64 {
        assert!(label < self.config.num_classes, "label out of range");
        // Forward pass caching pre-activations and activations.
        let mut activations: Vec<Vec<f64>> = vec![input.to_vec()];
        let mut pre_activations: Vec<Vec<f64>> = Vec::new();
        for layer in &self.layers {
            let z = layer.pre_activation(activations.last().expect("non-empty"));
            let a = layer.activation.apply_vec(&z);
            pre_activations.push(z);
            activations.push(a);
        }
        let logits = activations.last().expect("at least the input layer");
        let probs = softmax(logits);
        let loss = -(probs[label].max(1e-12)).ln();

        // Backward pass. Output delta for softmax + cross-entropy is p - y.
        let mut delta: Vec<f64> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p - if i == label { 1.0 } else { 0.0 })
            .collect();

        for l in (0..self.layers.len()).rev() {
            let input_act = activations[l].clone();
            let z = &pre_activations[l];
            // For the output layer the activation is linear so the derivative
            // is 1; hidden layers multiply by the activation derivative.
            let local_delta: Vec<f64> = if l == self.layers.len() - 1 {
                delta.clone()
            } else {
                delta
                    .iter()
                    .zip(z.iter())
                    .map(|(&d, &zi)| d * self.layers[l].activation.derivative(zi))
                    .collect()
            };
            // Delta for the previous layer (before applying its activation
            // derivative, which happens in the next iteration).
            let layer = &self.layers[l];
            let mut prev_delta = vec![0.0; layer.input_dim];
            for (row, &d) in layer
                .weights
                .chunks_exact(layer.input_dim)
                .zip(local_delta.iter())
            {
                for (p, &w) in prev_delta.iter_mut().zip(row.iter()) {
                    *p += w * d;
                }
            }
            // Gradient step.
            let layer = &mut self.layers[l];
            for ((row, bias), &d) in layer
                .weights
                .chunks_exact_mut(layer.input_dim)
                .zip(layer.biases.iter_mut())
                .zip(local_delta.iter())
            {
                for (w, &a) in row.iter_mut().zip(input_act.iter()) {
                    *w -= learning_rate * d * a;
                }
                *bias -= learning_rate * d;
            }
            delta = prev_delta;
        }
        loss
    }

    /// Trains for `epochs` passes of per-sample SGD, optionally evaluating an
    /// accuracy set after each epoch.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        epochs: usize,
        learning_rate: f64,
        eval: Option<(&[Vec<f64>], &[usize])>,
        rng: &mut R,
    ) -> Vec<MlpEpochStats> {
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(!features.is_empty(), "empty training set");
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        for epoch in 1..=epochs {
            // Fisher–Yates shuffle of the visit order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut total_loss = 0.0;
            for &idx in &order {
                total_loss += self.train_sample(&features[idx], labels[idx], learning_rate);
            }
            let eval_accuracy = eval.map(|(xs, ys)| self.evaluate_accuracy(xs, ys));
            history.push(MlpEpochStats {
                epoch,
                loss: total_loss / features.len() as f64,
                eval_accuracy,
            });
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two separable blobs in 4-D.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..15 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.2, 0.15, 0.1]);
            ys.push(0);
            xs.push(vec![0.9 - j, 0.8, 0.85, 0.9]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn parameter_counts() {
        // 4 → 8 → 3: (4+1)*8 + (8+1)*3 = 40 + 27 = 67.
        let cfg = MlpConfig::single_hidden(4, 8, 3);
        assert_eq!(cfg.parameter_count(), 67);
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(cfg, &mut rng);
        assert_eq!(net.parameter_count(), 67);
    }

    #[test]
    fn target_parameter_search_is_close() {
        // Iris-shaped baselines (4 features, 3 classes): DNN-12/56/112.
        for &target in &[12usize, 56, 112] {
            let (cfg, count) = MlpConfig::with_target_params(4, 3, target);
            assert!(!cfg.hidden.is_empty());
            let rel_err = (count as f64 - target as f64).abs() / target as f64;
            assert!(
                rel_err < 0.35,
                "target {target}: got {count} ({} hidden)",
                cfg.hidden[0]
            );
        }
        // MNIST-shaped baselines (16 PCA features, 2 classes): DNN-306/1218.
        for &target in &[306usize, 1218] {
            let (cfg, count) = MlpConfig::with_target_params(16, 2, target);
            let rel_err = (count as f64 - target as f64).abs() / target as f64;
            assert!(
                rel_err < 0.1,
                "target {target}: got {count} ({} hidden)",
                cfg.hidden[0]
            );
        }
    }

    #[test]
    fn forward_pass_produces_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Mlp::new(MlpConfig::single_hidden(4, 6, 3), &mut rng);
        let p = net.predict_proba(&[0.1, 0.4, 0.8, 0.3]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn training_reduces_loss_and_learns_toy_problem() {
        let (xs, ys) = toy_data();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Mlp::new(MlpConfig::single_hidden(4, 8, 2), &mut rng);
        let history = net.fit(&xs, &ys, 30, 0.1, Some((&xs, &ys)), &mut rng);
        assert_eq!(history.len(), 30);
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
        assert!(history.last().unwrap().eval_accuracy.unwrap() >= 0.95);
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numerically verify the weight gradient of a tiny network.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MlpConfig {
            input_dim: 2,
            hidden: vec![],
            num_classes: 2,
            activation: Activation::Linear,
        };
        let net = Mlp::new(cfg, &mut rng);
        let x = vec![0.3, -0.7];
        let y = 1usize;
        // Analytic update: clone, apply one SGD step with lr = 1, and compare
        // the weight delta against the numeric gradient.
        let mut updated = net.clone();
        updated.train_sample(&x, y, 1.0);
        let eps = 1e-6;
        for o in 0..2 {
            for i in 0..2 {
                let mut plus = net.clone();
                plus.layers[0].weights[o * 2 + i] += eps;
                let mut minus = net.clone();
                minus.layers[0].weights[o * 2 + i] -= eps;
                let numeric = (plus.sample_loss(&x, y) - minus.sample_loss(&x, y)) / (2.0 * eps);
                let applied =
                    net.layers[0].weights[o * 2 + i] - updated.layers[0].weights[o * 2 + i];
                assert!(
                    (numeric - applied).abs() < 1e-4,
                    "weight ({o},{i}): numeric {numeric} vs applied {applied}"
                );
            }
        }
    }

    #[test]
    fn multiclass_training_works() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let j = 0.01 * i as f64;
            xs.push(vec![0.1 + j, 0.1]);
            ys.push(0);
            xs.push(vec![0.5, 0.9 - j]);
            ys.push(1);
            xs.push(vec![0.9 - j, 0.15 + j]);
            ys.push(2);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Mlp::new(MlpConfig::single_hidden(2, 12, 3), &mut rng);
        net.fit(&xs, &ys, 60, 0.1, None, &mut rng);
        assert!(net.evaluate_accuracy(&xs, &ys) > 0.9);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(MlpConfig::single_hidden(2, 2, 2), &mut rng);
        net.train_sample(&[0.1, 0.2], 7, 0.1);
    }

    #[test]
    fn softmax_regression_without_hidden_layer() {
        let (xs, ys) = toy_data();
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = MlpConfig {
            input_dim: 4,
            hidden: vec![],
            num_classes: 2,
            activation: Activation::Relu,
        };
        let mut net = Mlp::new(cfg, &mut rng);
        net.fit(&xs, &ys, 40, 0.2, None, &mut rng);
        assert!(net.evaluate_accuracy(&xs, &ys) >= 0.9);
    }
}
