//! Principal component analysis (PCA).
//!
//! The paper downsizes MNIST's 784 dimensions to 16 (simulations) or 4
//! (IBM-Q experiments) with PCA before quantum encoding. This module
//! implements PCA without external linear-algebra crates:
//!
//! * the components are found by **orthogonal (subspace) power iteration**
//!   that never materialises the `d × d` covariance matrix — each iteration
//!   multiplies the current basis by `Xᵀ(X·B)/n`, so a 784-dimensional fit is
//!   cheap even in debug builds;
//! * for small dimensionalities a dense covariance + Jacobi eigensolver path
//!   exists ([`Pca::fit_exact`]) and is used to validate the iterative path.

use crate::eigen::jacobi_eigen;
use crate::matrix::{dot, normalize, Matrix};
use rand::Rng;

/// A fitted PCA transform.
#[derive(Clone, Debug, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal components as rows (each of length `input_dim`).
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits `num_components` principal components with subspace power
    /// iteration.
    ///
    /// # Panics
    /// Panics when the data is empty, ragged, or has fewer dimensions than
    /// requested components.
    pub fn fit<R: Rng + ?Sized>(data: &[Vec<f64>], num_components: usize, rng: &mut R) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on an empty dataset");
        let dim = data[0].len();
        assert!(dim > 0, "data must have at least one dimension");
        assert!(
            num_components >= 1 && num_components <= dim,
            "requested {num_components} components from {dim}-dimensional data"
        );
        for row in data {
            assert_eq!(row.len(), dim, "ragged data rows");
        }
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|j| data.iter().map(|row| row[j]).sum::<f64>() / n)
            .collect();
        // Centre the data once.
        let centered: Vec<Vec<f64>> = data
            .iter()
            .map(|row| row.iter().zip(mean.iter()).map(|(x, m)| x - m).collect())
            .collect();

        // Random orthonormal starting basis.
        let mut basis: Vec<Vec<f64>> = (0..num_components)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        orthonormalize(&mut basis);

        let iterations = 60;
        for _ in 0..iterations {
            // B ← Xᵀ(X·B)/n, computed row-by-row to avoid the d×d covariance.
            let mut next: Vec<Vec<f64>> = vec![vec![0.0; dim]; num_components];
            for row in &centered {
                // projections of this sample onto each basis vector.
                for (b, nb) in basis.iter().zip(next.iter_mut()) {
                    let proj = dot(row, b);
                    for (o, &x) in nb.iter_mut().zip(row.iter()) {
                        *o += proj * x;
                    }
                }
            }
            for nb in &mut next {
                for x in nb.iter_mut() {
                    *x /= n;
                }
            }
            orthonormalize(&mut next);
            basis = next;
        }

        // Explained variance = Rayleigh quotients of the converged directions.
        let explained_variance: Vec<f64> = basis
            .iter()
            .map(|b| {
                centered
                    .iter()
                    .map(|row| {
                        let p = dot(row, b);
                        p * p
                    })
                    .sum::<f64>()
                    / n
            })
            .collect();

        // Order components by decreasing variance.
        let mut order: Vec<usize> = (0..num_components).collect();
        order.sort_by(|&a, &b| {
            explained_variance[b]
                .partial_cmp(&explained_variance[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let components = order.iter().map(|&i| basis[i].clone()).collect();
        let explained_variance = order.iter().map(|&i| explained_variance[i]).collect();

        Pca {
            mean,
            components,
            explained_variance,
        }
    }

    /// Fits PCA exactly via the dense covariance matrix and a Jacobi
    /// eigensolver. Only suitable for small dimensionalities (≤ ~64); used
    /// for testing and for the 4-dimensional hardware experiments.
    pub fn fit_exact(data: &[Vec<f64>], num_components: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on an empty dataset");
        let dim = data[0].len();
        assert!(
            num_components >= 1 && num_components <= dim,
            "requested {num_components} components from {dim}-dimensional data"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|j| data.iter().map(|row| row[j]).sum::<f64>() / n)
            .collect();
        let mut cov = Matrix::zeros(dim, dim);
        for row in data {
            let centered: Vec<f64> = row.iter().zip(mean.iter()).map(|(x, m)| x - m).collect();
            for i in 0..dim {
                for j in 0..dim {
                    cov[(i, j)] += centered[i] * centered[j] / n;
                }
            }
        }
        let eig = jacobi_eigen(&cov, 100, 1e-12);
        Pca {
            mean,
            components: eig.eigenvectors.into_iter().take(num_components).collect(),
            explained_variance: eig.eigenvalues.into_iter().take(num_components).collect(),
        }
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Input dimensionality the transform was fitted on.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Per-component explained variance, in decreasing order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// The principal components (rows of length `input_dim`).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Projects one sample onto the principal components.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.input_dim(),
            "PCA transform dimension mismatch"
        );
        let centered: Vec<f64> = x.iter().zip(self.mean.iter()).map(|(v, m)| v - m).collect();
        self.components.iter().map(|c| dot(&centered, c)).collect()
    }

    /// Projects a whole dataset.
    pub fn transform(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|x| self.transform_one(x)).collect()
    }

    /// Reconstructs a sample from its projection (inverse transform within
    /// the retained subspace).
    pub fn inverse_transform_one(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.num_components(), "projection length mismatch");
        let mut out = self.mean.clone();
        for (coef, comp) in z.iter().zip(self.components.iter()) {
            for (o, c) in out.iter_mut().zip(comp.iter()) {
                *o += coef * c;
            }
        }
        out
    }
}

/// Gram–Schmidt orthonormalisation of a set of vectors (in place).
fn orthonormalize(vectors: &mut [Vec<f64>]) {
    for i in 0..vectors.len() {
        for j in 0..i {
            let proj = dot(&vectors[i], &vectors[j]);
            let (head, tail) = vectors.split_at_mut(i);
            for (x, y) in tail[0].iter_mut().zip(head[j].iter()) {
                *x -= proj * y;
            }
        }
        normalize(&mut vectors[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Correlated 3-D data whose dominant direction is (1, 1, 0)/√2.
    fn correlated_data(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t: f64 = rng.gen_range(-2.0..2.0);
                let noise: f64 = rng.gen_range(-0.05..0.05);
                let z: f64 = rng.gen_range(-0.1..0.1);
                vec![t + noise, t - noise, z]
            })
            .collect()
    }

    #[test]
    fn dominant_direction_recovered() {
        let data = correlated_data(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let pca = Pca::fit(&data, 2, &mut rng);
        let c0 = &pca.components()[0];
        // First component should be ±(1,1,0)/√2.
        let expected = std::f64::consts::FRAC_1_SQRT_2;
        assert!((c0[0].abs() - expected).abs() < 0.05, "{c0:?}");
        assert!((c0[1].abs() - expected).abs() < 0.05);
        assert!(c0[2].abs() < 0.1);
        // Explained variance is decreasing.
        assert!(pca.explained_variance()[0] >= pca.explained_variance()[1]);
    }

    #[test]
    fn iterative_and_exact_fits_agree() {
        let data = correlated_data(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let fast = Pca::fit(&data, 2, &mut rng);
        let exact = Pca::fit_exact(&data, 2);
        for (a, b) in fast
            .explained_variance()
            .iter()
            .zip(exact.explained_variance().iter())
        {
            assert!((a - b).abs() / b.max(1e-9) < 0.05, "{a} vs {b}");
        }
        // Components agree up to sign.
        for (ca, cb) in fast.components().iter().zip(exact.components().iter()) {
            let cos = dot(ca, cb).abs();
            assert!(cos > 0.98, "component overlap only {cos}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let data = correlated_data(200, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let pca = Pca::fit(&data, 3, &mut rng);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&pca.components()[i], &pca.components()[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn transform_and_inverse_reconstruct_within_subspace() {
        let data = correlated_data(200, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let pca = Pca::fit(&data, 2, &mut rng);
        let z = pca.transform(&data);
        assert_eq!(z.len(), data.len());
        assert_eq!(z[0].len(), 2);
        // Reconstruction error should be small because the data is nearly 2-D.
        let mut err = 0.0;
        for (x, zx) in data.iter().zip(z.iter()) {
            let rec = pca.inverse_transform_one(zx);
            err += x
                .iter()
                .zip(rec.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        err /= data.len() as f64;
        assert!(err < 0.02, "mean reconstruction error {err}");
    }

    #[test]
    fn transform_centering_sends_mean_to_origin() {
        let data = correlated_data(150, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let pca = Pca::fit(&data, 2, &mut rng);
        let z = pca.transform(&data);
        for k in 0..2 {
            let mean_k: f64 = z.iter().map(|r| r[k]).sum::<f64>() / z.len() as f64;
            assert!(mean_k.abs() < 1e-6);
        }
    }

    #[test]
    fn high_dimensional_fit_is_tractable() {
        // 128-dimensional data with a planted 4-D structure.
        let mut rng = StdRng::seed_from_u64(11);
        let dim = 128;
        let n = 200;
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let factors: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
                (0..dim)
                    .map(|j| {
                        let f = factors[j % 4];
                        f * (1.0 + (j as f64) / dim as f64) + rng.gen_range(-0.01..0.01)
                    })
                    .collect()
            })
            .collect();
        let pca = Pca::fit(&data, 4, &mut rng);
        let total_var: f64 = pca.explained_variance().iter().sum();
        assert!(total_var > 0.0);
        assert_eq!(pca.transform_one(&data[0]).len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Pca::fit(&[], 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "components")]
    fn too_many_components_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Pca::fit(&[vec![1.0, 2.0]], 5, &mut rng);
    }
}
