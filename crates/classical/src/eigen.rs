//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Used by the PCA substrate for small covariance matrices and by tests to
//! validate the large-matrix power-iteration path. Complexity is O(n³) per
//! sweep, which is fine for the ≤ 64-dimensional matrices it is applied to.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `matrix = V · diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as rows, aligned with `eigenvalues`.
    pub eigenvectors: Vec<Vec<f64>>,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn jacobi_eigen(matrix: &Matrix, max_sweeps: usize, tol: f64) -> EigenDecomposition {
    assert_eq!(matrix.rows(), matrix.cols(), "Jacobi needs a square matrix");
    let n = matrix.rows();
    let mut a = matrix.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        // Sum of squares of the off-diagonal entries.
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
        }
        if off.sqrt() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[(p, q)].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * a[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of A.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| {
            let eigenvalue = a[(i, i)];
            let eigenvector: Vec<f64> = (0..n).map(|k| v[(k, i)]).collect();
            (eigenvalue, eigenvector)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

    EigenDecomposition {
        eigenvalues: pairs.iter().map(|(l, _)| *l).collect(),
        eigenvectors: pairs.into_iter().map(|(_, v)| v).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let eig = jacobi_eigen(&m, 50, 1e-12);
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-10);
        assert!((eig.eigenvalues[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigensystem() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = jacobi_eigen(&m, 50, 1e-12);
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ = 3 is (1, 1)/√2 up to sign.
        let v = &eig.eigenvectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal_and_satisfy_definition() {
        // A random-ish symmetric matrix.
        let m = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.2, //
                1.0, 3.0, 0.3, 0.1, //
                0.5, 0.3, 2.0, 0.4, //
                0.2, 0.1, 0.4, 1.0,
            ],
        );
        let eig = jacobi_eigen(&m, 100, 1e-14);
        for i in 0..4 {
            for j in 0..4 {
                let d = dot(&eig.eigenvectors[i], &eig.eigenvectors[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-8, "v{i}·v{j} = {d}");
            }
        }
        // A·v ≈ λ·v.
        for (lambda, v) in eig.eigenvalues.iter().zip(eig.eigenvectors.iter()) {
            let av = m.matvec(v);
            for (a, b) in av.iter().zip(v.iter()) {
                assert!((a - lambda * b).abs() < 1e-8);
            }
        }
        // Trace equals the eigenvalue sum.
        let trace = 4.0 + 3.0 + 2.0 + 1.0;
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let m = Matrix::zeros(2, 3);
        let _ = jacobi_eigen(&m, 10, 1e-10);
    }
}
