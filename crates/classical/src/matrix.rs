//! A minimal dense real matrix used by the classical neural-network and PCA
//! substrates. Row-major storage, no external dependencies.

/// A dense, row-major `f64` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute difference between two matrices of the same shape.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot-product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Normalises a vector in place; leaves zero vectors untouched.
pub fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let t = m.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]);
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![7.0, -1.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }
}
