//! Workspace invariant linter (`quclassi-lint`).
//!
//! Enforces the cross-cutting conventions the compiler cannot see — the
//! ones that rot silently between PRs. Deliberately **line-wise** (no
//! `syn`, no parsing): every rule is a scan over source lines plus a
//! little file-path context, so the linter builds in milliseconds, has no
//! dependencies, and its false-positive surface is small enough to keep
//! at zero findings (CI runs it with findings denied).
//!
//! # Rules
//!
//! | rule | invariant |
//! |---|---|
//! | `unsafe-confinement` | `unsafe` code only in `vendor/poll` (FFI) and the allocator harness `crates/sim/tests/zero_alloc.rs` |
//! | `crate-attributes` | first-party lib roots carry `#![forbid(unsafe_code)]` **and** `#![deny(missing_docs)]`; bin roots carry `#![forbid(unsafe_code)]` |
//! | `env-knobs` | every `QUCLASSI_*` variable read in code has a row in README's knob table, and every table row names a variable the code reads |
//! | `metric-names` | registry metric literals match `quclassi_<area>_<metric>`; counters end `_total`, histograms end `_ns`, gauges end in neither |
//! | `error-kinds` | the wire `kind` strings in `crates/serve/src/error.rs` exactly match README's documented stable set |
//! | `seqcst-justification` | no `SeqCst` in first-party code without a `// seqcst:` justification on the same or previous line |
//! | `shim-bypass` | model-checked protocol files use `crate::quclassi_sync`, never `std::sync` directly (test modules exempt) |
//!
//! # Heuristics (accepted, documented)
//!
//! * Comment-only lines and `//` tails are ignored for token scans; a
//!   `//` inside a string literal would truncate the scan of that line.
//! * A `#[cfg(test)]` attribute followed by a `mod` item marks the rest
//!   of the file as test code (the workspace convention keeps test
//!   modules at file tails).
//! * Templated metric names (format strings carrying `{label}` sets or
//!   interpolated segments) are charset-checked up to the first `{`;
//!   the suffix/shape rules need the full literal name.
//! * The linter's own sources are excluded from the token-scan rules
//!   (`env-knobs`, `metric-names`, `unsafe-confinement`,
//!   `seqcst-justification`): rule fixtures and messages necessarily
//!   spell the violations they describe.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One rule violation at a workspace-relative location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (kebab-case, stable).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A source file held in memory: the unit the rules operate on, so tests
/// can feed seeded violations without touching disk.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The file's lines, without terminators.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Builds a file from a path and its full text.
    pub fn new(path: impl Into<String>, text: &str) -> Self {
        SourceFile {
            path: path.into(),
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    /// The index from which the file is test code (`#[cfg(test)]` +
    /// `mod`), or `lines.len()` when none is found.
    fn test_tail_start(&self) -> usize {
        let mut i = 0;
        while i < self.lines.len() {
            if self.lines[i].trim() == "#[cfg(test)]" {
                // Skip further attributes, then require a mod item.
                let mut j = i + 1;
                while j < self.lines.len() && self.lines[j].trim_start().starts_with("#[") {
                    j += 1;
                }
                if j < self.lines.len() {
                    let after = self.lines[j].trim_start();
                    if after.starts_with("mod ") || after.starts_with("pub(crate) mod ") {
                        return i;
                    }
                }
            }
            i += 1;
        }
        self.lines.len()
    }
}

/// The comment-stripped code portion of a line (`""` for comment-only
/// lines). Heuristic: truncates at the first `//`, which is correct for
/// everything but `//` inside string literals.
fn code_portion(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Whether `hay` contains `needle` as a whole word (not merely as a
/// substring of a longer identifier).
fn contains_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident);
        let after = at + needle.len();
        let after_ok = after >= hay.len() || !hay[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Directories/files where `unsafe` code is allowed, with why.
const UNSAFE_ALLOWED: &[(&str, &str)] = &[
    ("vendor/poll/", "raw epoll/eventfd FFI"),
    (
        "crates/sim/tests/zero_alloc.rs",
        "GlobalAlloc counting harness",
    ),
];

/// Model-checked protocol files that must route all synchronisation
/// through the `quclassi_sync` shim.
const SHIMMED_FILES: &[&str] = &[
    "crates/serve/src/trace.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/runtime.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/swap.rs",
    "crates/sim/src/profile.rs",
];

fn is_first_party(path: &str) -> bool {
    path.starts_with("crates/") || path.starts_with("tools/")
}

fn is_lint_source(path: &str) -> bool {
    path.starts_with("tools/lint/")
}

/// Runs every rule over the in-memory file set (which must include
/// `README.md` for the documentation-sync rules to have a target).
pub fn lint(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_unsafe_confinement(files, &mut findings);
    rule_crate_attributes(files, &mut findings);
    rule_env_knobs(files, &mut findings);
    rule_metric_names(files, &mut findings);
    rule_error_kinds(files, &mut findings);
    rule_seqcst_justification(files, &mut findings);
    rule_shim_bypass(files, &mut findings);
    findings.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    findings
}

fn rule_unsafe_confinement(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| f.path.ends_with(".rs")) {
        if is_lint_source(&f.path)
            || UNSAFE_ALLOWED
                .iter()
                .any(|(prefix, _)| f.path.starts_with(prefix))
        {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            let code = code_portion(line);
            if contains_word(code, "unsafe") && !code.contains("unsafe_code") {
                findings.push(Finding {
                    rule: "unsafe-confinement",
                    path: f.path.clone(),
                    line: i + 1,
                    message: format!(
                        "`unsafe` outside the allowed locations ({}); \
                         keep unsafe code confined to the vendored FFI shim",
                        UNSAFE_ALLOWED
                            .iter()
                            .map(|(p, why)| format!("{p} — {why}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }
}

fn rule_crate_attributes(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let is_lib_root = |p: &str| {
        (p.starts_with("crates/") || p.starts_with("tools/"))
            && p.ends_with("/src/lib.rs")
            && p.matches('/').count() == 3
    };
    let is_bin_root = |p: &str| {
        (p.starts_with("crates/") || p.starts_with("tools/"))
            && p.ends_with("/src/main.rs")
            && p.matches('/').count() == 3
    };
    for f in files.iter() {
        let lib = is_lib_root(&f.path);
        let bin = is_bin_root(&f.path);
        if !lib && !bin {
            continue;
        }
        let has = |attr: &str| f.lines.iter().any(|l| l.trim() == attr);
        if !has("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                rule: "crate-attributes",
                path: f.path.clone(),
                line: 0,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
        if lib && !has("#![deny(missing_docs)]") {
            findings.push(Finding {
                rule: "crate-attributes",
                path: f.path.clone(),
                line: 0,
                message: "library crate root is missing `#![deny(missing_docs)]`".to_string(),
            });
        }
    }
}

/// Extracts every `QUCLASSI_<NAME>` token in a line.
fn scan_env_vars(line: &str, out: &mut Vec<String>) {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find("QUCLASSI_") {
        let at = start + pos;
        let mut end = at + "QUCLASSI_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end] == b'_'
                || bytes[end].is_ascii_digit())
        {
            end += 1;
        }
        if end > at + "QUCLASSI_".len() {
            out.push(line[at..end].trim_end_matches('_').to_string());
        }
        start = end;
    }
}

/// Rows of a README markdown table section: the first backticked token of
/// every `| \`...\`` row between `heading` and the next same-or-higher
/// heading. Returns `(row, line)` pairs, or `None` if the heading is
/// missing entirely.
fn readme_table_rows(
    readme: &SourceFile,
    heading: &str,
    prefix: &str,
) -> Option<Vec<(String, usize)>> {
    let level = heading.chars().take_while(|&c| c == '#').count();
    let start = readme.lines.iter().position(|l| l.trim() == heading)?;
    let mut rows = Vec::new();
    for (i, line) in readme.lines.iter().enumerate().skip(start + 1) {
        let t = line.trim();
        let hashes = t.chars().take_while(|&c| c == '#').count();
        if hashes > 0 && hashes <= level && t[hashes..].starts_with(' ') {
            break;
        }
        if let Some(rest) = t.strip_prefix("| `") {
            if let Some(end) = rest.find('`') {
                let token = &rest[..end];
                if token.starts_with(prefix) {
                    rows.push((token.to_string(), i + 1));
                }
            }
        }
    }
    Some(rows)
}

const KNOB_HEADING: &str = "## Runtime knobs (environment variables)";

fn rule_env_knobs(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut used: Vec<(String, String, usize)> = Vec::new(); // (var, path, line)
    for f in files.iter().filter(|f| f.path.ends_with(".rs")) {
        if !is_first_party(&f.path) || is_lint_source(&f.path) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            let mut vars = Vec::new();
            scan_env_vars(line, &mut vars);
            for v in vars {
                used.push((v, f.path.clone(), i + 1));
            }
        }
    }
    let Some(readme) = files.iter().find(|f| f.path == "README.md") else {
        return;
    };
    let Some(rows) = readme_table_rows(readme, KNOB_HEADING, "QUCLASSI_") else {
        findings.push(Finding {
            rule: "env-knobs",
            path: readme.path.clone(),
            line: 0,
            message: format!("README is missing the `{KNOB_HEADING}` section"),
        });
        return;
    };
    let documented: Vec<&str> = rows.iter().map(|(v, _)| v.as_str()).collect();
    let mut reported = Vec::new();
    for (var, path, line) in &used {
        if !documented.contains(&var.as_str()) && !reported.contains(var) {
            reported.push(var.clone());
            findings.push(Finding {
                rule: "env-knobs",
                path: path.clone(),
                line: *line,
                message: format!(
                    "`{var}` is read here but has no row in README's runtime-knob table"
                ),
            });
        }
    }
    for (var, line) in &rows {
        if !used.iter().any(|(v, _, _)| v == var) {
            findings.push(Finding {
                rule: "env-knobs",
                path: readme.path.clone(),
                line: *line,
                message: format!(
                    "README documents `{var}` but nothing in crates/ or tools/ reads it"
                ),
            });
        }
    }
}

/// Extracts every `"quclassi_..."` string literal in a line.
fn scan_metric_literals(line: &str, out: &mut Vec<String>) {
    let mut start = 0;
    while let Some(pos) = line[start..].find("\"quclassi_") {
        let at = start + pos + 1;
        match line[at..].find('"') {
            Some(end) => {
                out.push(line[at..at + end].to_string());
                start = at + end + 1;
            }
            None => break,
        }
    }
}

fn rule_metric_names(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files.iter() {
        if !f.path.starts_with("crates/") || !f.path.contains("/src/") || !f.path.ends_with(".rs") {
            continue;
        }
        let tail = f.test_tail_start();
        for (i, line) in f.lines.iter().take(tail).enumerate() {
            let code = code_portion(line);
            let mut literals = Vec::new();
            scan_metric_literals(code, &mut literals);
            for name in literals {
                // A `{` marks a format-string template (a Prometheus
                // label set, or an interpolated name segment): only the
                // charset of the static prefix can be checked.
                if let Some(brace) = name.find('{') {
                    let prefix = name[..brace].trim_end_matches('_');
                    let clean = prefix.split('_').all(|part| {
                        !part.is_empty()
                            && part
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                    });
                    if !clean {
                        findings.push(Finding {
                            rule: "metric-names",
                            path: f.path.clone(),
                            line: i + 1,
                            message: format!(
                                "templated metric `{name}` has a malformed static prefix \
                                 (want lowercase `quclassi_<area>_...`)"
                            ),
                        });
                    }
                    continue;
                }
                let well_formed = name.split('_').all(|part| {
                    !part.is_empty()
                        && part
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                }) && name.split('_').count() >= 3;
                if !well_formed {
                    findings.push(Finding {
                        rule: "metric-names",
                        path: f.path.clone(),
                        line: i + 1,
                        message: format!(
                            "metric `{name}` does not match `quclassi_<area>_<metric>[_total|_ns]`"
                        ),
                    });
                    continue;
                }
                let is_counter = code.contains(".counter(") || code.contains("\"counter\"");
                let is_histogram = code.contains(".histogram(") || code.contains("\"histogram\"");
                let is_gauge = code.contains(".gauge(")
                    || code.contains(".float_gauge(")
                    || code.contains("\"gauge\"")
                    || code.contains("\"float_gauge\"");
                if is_counter && !name.ends_with("_total") {
                    findings.push(Finding {
                        rule: "metric-names",
                        path: f.path.clone(),
                        line: i + 1,
                        message: format!("counter `{name}` must end in `_total`"),
                    });
                } else if is_histogram && !name.ends_with("_ns") {
                    findings.push(Finding {
                        rule: "metric-names",
                        path: f.path.clone(),
                        line: i + 1,
                        message: format!("histogram `{name}` must end in `_ns`"),
                    });
                } else if is_gauge && (name.ends_with("_total") || name.ends_with("_ns")) {
                    findings.push(Finding {
                        rule: "metric-names",
                        path: f.path.clone(),
                        line: i + 1,
                        message: format!(
                            "gauge `{name}` must not use the `_total`/`_ns` reserved suffixes"
                        ),
                    });
                }
            }
        }
    }
}

const ERROR_KINDS_HEADING: &str = "### Wire error kinds";

fn rule_error_kinds(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(error_rs) = files.iter().find(|f| f.path == "crates/serve/src/error.rs") else {
        return;
    };
    // The `kind()` strings: every `=> "..."` match arm in non-test code.
    let tail = error_rs.test_tail_start();
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for (i, line) in error_rs.lines.iter().take(tail).enumerate() {
        let code = code_portion(line);
        if let Some(pos) = code.find("=> \"") {
            let at = pos + 4;
            if let Some(end) = code[at..].find('"') {
                kinds.push((code[at..at + end].to_string(), i + 1));
            }
        }
    }
    let Some(readme) = files.iter().find(|f| f.path == "README.md") else {
        return;
    };
    let Some(rows) = readme_table_rows(readme, ERROR_KINDS_HEADING, "") else {
        findings.push(Finding {
            rule: "error-kinds",
            path: readme.path.clone(),
            line: 0,
            message: format!(
                "README is missing the `{ERROR_KINDS_HEADING}` section documenting the stable \
                 wire `kind` strings"
            ),
        });
        return;
    };
    for (kind, line) in &kinds {
        if !rows.iter().any(|(r, _)| r == kind) {
            findings.push(Finding {
                rule: "error-kinds",
                path: error_rs.path.clone(),
                line: *line,
                message: format!(
                    "wire error kind `{kind}` is not documented in README's \
                     `{ERROR_KINDS_HEADING}` table — remote clients branch on these strings"
                ),
            });
        }
    }
    for (row, line) in &rows {
        if row == "kind" {
            continue; // table header
        }
        if !kinds.iter().any(|(k, _)| k == row) {
            findings.push(Finding {
                rule: "error-kinds",
                path: readme.path.clone(),
                line: *line,
                message: format!(
                    "README documents wire error kind `{row}` that the code never produces"
                ),
            });
        }
    }
}

fn rule_seqcst_justification(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files.iter().filter(|f| f.path.ends_with(".rs")) {
        if !is_first_party(&f.path) || is_lint_source(&f.path) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            if !code_portion(line).contains("SeqCst") {
                continue;
            }
            let justified =
                line.contains("// seqcst:") || (i > 0 && f.lines[i - 1].contains("// seqcst:"));
            if !justified {
                findings.push(Finding {
                    rule: "seqcst-justification",
                    path: f.path.clone(),
                    line: i + 1,
                    message: "`SeqCst` without a `// seqcst:` justification — the model checker \
                              treats SeqCst as AcqRel, so protocols relying on the total order \
                              are unverifiable; prefer acquire/release, or justify"
                        .to_string(),
                });
            }
        }
    }
}

fn rule_shim_bypass(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files
        .iter()
        .filter(|f| SHIMMED_FILES.contains(&f.path.as_str()))
    {
        let tail = f.test_tail_start();
        for (i, line) in f.lines.iter().take(tail).enumerate() {
            if code_portion(line).contains("std::sync") {
                findings.push(Finding {
                    rule: "shim-bypass",
                    path: f.path.clone(),
                    line: i + 1,
                    message: "model-checked protocol file must go through `crate::quclassi_sync`, \
                              not `std::sync` — direct use is invisible to the model checker"
                        .to_string(),
                });
            }
        }
    }
}

/// Loads the workspace tree rooted at `root` into memory: `README.md`
/// plus every `.rs` file under `crates/`, `tools/`, and `vendor/`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let readme = root.join("README.md");
    if readme.is_file() {
        files.push(SourceFile::new("README.md", &fs::read_to_string(readme)?));
    }
    for top in ["crates", "tools", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(root, &path, files)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::new(rel, &fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// [`load_workspace`] + [`lint`]: the full run the binary performs.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint(&load_workspace(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal clean workspace the seeded-violation tests perturb.
    fn clean_files() -> Vec<SourceFile> {
        vec![
            SourceFile::new(
                "README.md",
                "# repo\n\
                 ## Runtime knobs (environment variables)\n\
                 | knob | read by | meaning |\n\
                 |---|---|---|\n\
                 | `QUCLASSI_THREADS` | executor | workers |\n\
                 ## CI\n\
                 ### Wire error kinds\n\
                 | `kind` | meaning |\n\
                 |---|---|\n\
                 | `saturated` | retry later |\n\
                 ## Next\n",
            ),
            SourceFile::new(
                "crates/serve/src/lib.rs",
                "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub mod error;\n",
            ),
            SourceFile::new(
                "crates/serve/src/error.rs",
                "impl ServeError {\n    pub fn kind(&self) -> &str {\n        match self {\n            ServeError::Saturated { .. } => \"saturated\",\n        }\n    }\n}\n",
            ),
            SourceFile::new(
                "crates/serve/src/trace.rs",
                "use crate::quclassi_sync::atomic::AtomicU64;\n\
                 fn read_env() { std::env::var(\"QUCLASSI_THREADS\").ok(); }\n\
                 #[cfg(test)]\n\
                 mod tests {\n    use std::sync::Arc;\n}\n",
            ),
        ]
    }

    #[test]
    fn clean_workspace_has_zero_findings() {
        assert_eq!(lint(&clean_files()), Vec::new());
    }

    #[test]
    fn unsafe_outside_the_allowlist_is_flagged() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/bad.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        ));
        let findings = lint(&files);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "unsafe-confinement" && f.path == "crates/serve/src/bad.rs"),
            "{findings:?}"
        );
    }

    #[test]
    fn unsafe_in_vendor_poll_and_comments_is_allowed() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "vendor/poll/src/extra.rs",
            "fn f() { unsafe { libc_call() } }\n",
        ));
        files.push(SourceFile::new(
            "crates/serve/src/ok.rs",
            "// this crate has no unsafe code\nfn safe_unsafety() {}\n",
        ));
        assert_eq!(lint(&files), Vec::new());
    }

    #[test]
    fn missing_crate_attributes_are_flagged() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/extra/src/lib.rs",
            "//! docs\npub fn f() {}\n",
        ));
        let findings = lint(&files);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "crate-attributes" && f.path == "crates/extra/src/lib.rs")
            .collect();
        assert_eq!(hits.len(), 2, "both attributes missing: {findings:?}");
    }

    #[test]
    fn undocumented_env_var_is_flagged_at_the_read_site() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/config.rs",
            "fn f() { std::env::var(\"QUCLASSI_SECRET_KNOB\").ok(); }\n",
        ));
        let findings = lint(&files);
        assert!(
            findings.iter().any(|f| f.rule == "env-knobs"
                && f.path == "crates/serve/src/config.rs"
                && f.message.contains("QUCLASSI_SECRET_KNOB")),
            "{findings:?}"
        );
    }

    #[test]
    fn stale_readme_knob_row_is_flagged() {
        let mut files = clean_files();
        let readme = files.iter_mut().find(|f| f.path == "README.md").unwrap();
        let at = readme
            .lines
            .iter()
            .position(|l| l.contains("QUCLASSI_THREADS"))
            .unwrap();
        readme.lines.insert(
            at + 1,
            "| `QUCLASSI_REMOVED_KNOB` | nothing | gone |".to_string(),
        );
        let findings = lint(&files);
        assert!(
            findings.iter().any(|f| f.rule == "env-knobs"
                && f.path == "README.md"
                && f.message.contains("QUCLASSI_REMOVED_KNOB")),
            "{findings:?}"
        );
    }

    #[test]
    fn counter_without_total_suffix_is_flagged() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/m.rs",
            "fn f(r: &R) { r.counter(\"quclassi_serve_admitted\"); }\n\
             fn g(r: &R) { r.histogram(\"quclassi_serve_latency_ns\"); }\n",
        ));
        let findings = lint(&files);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "metric-names")
            .collect();
        assert_eq!(hits.len(), 1, "only the counter is malformed: {findings:?}");
        assert!(hits[0].message.contains("`_total`"));
    }

    #[test]
    fn malformed_metric_shape_is_flagged_even_in_tuples() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/m.rs",
            "const M: (&str, &str) = (\"quclassi_Bad\", \"gauge\");\n",
        ));
        assert!(lint(&files)
            .iter()
            .any(|f| f.rule == "metric-names" && f.message.contains("quclassi_Bad")));
    }

    #[test]
    fn templated_metric_names_check_only_the_static_prefix() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/m.rs",
            "fn f() { s(&format!(\"quclassi_model_version{label}\")); }\n\
             fn g() { s(&format!(\"quclassi_Model_{name}_total{label}\")); }\n",
        ));
        let findings = lint(&files);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "metric-names")
            .collect();
        assert_eq!(
            hits.len(),
            1,
            "only the uppercase prefix fires: {findings:?}"
        );
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn undocumented_error_kind_is_flagged() {
        let mut files = clean_files();
        let err = files
            .iter_mut()
            .find(|f| f.path == "crates/serve/src/error.rs")
            .unwrap();
        err.lines.insert(
            4,
            "            ServeError::Novel => \"novel_kind\",".to_string(),
        );
        let findings = lint(&files);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "error-kinds" && f.message.contains("novel_kind")),
            "{findings:?}"
        );
    }

    #[test]
    fn stale_readme_error_kind_is_flagged() {
        let mut files = clean_files();
        let readme = files.iter_mut().find(|f| f.path == "README.md").unwrap();
        let at = readme
            .lines
            .iter()
            .position(|l| l.contains("`saturated`"))
            .unwrap();
        readme
            .lines
            .insert(at + 1, "| `vanished` | never produced |".to_string());
        let findings = lint(&files);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "error-kinds" && f.message.contains("vanished")),
            "{findings:?}"
        );
    }

    #[test]
    fn seqcst_needs_a_justification_comment() {
        let mut files = clean_files();
        files.push(SourceFile::new(
            "crates/serve/src/s.rs",
            "fn f(a: &A) { a.load(Ordering::SeqCst); }\n\
             // seqcst: store-load order against the flush flag is required\n\
             fn g(a: &A) { a.load(Ordering::SeqCst); }\n\
             fn h(a: &A) { a.load(Ordering::SeqCst); } // seqcst: ditto\n",
        ));
        let findings = lint(&files);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "seqcst-justification")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn std_sync_in_a_shimmed_protocol_file_is_flagged_outside_tests() {
        let mut files = clean_files();
        let trace = files
            .iter_mut()
            .find(|f| f.path == "crates/serve/src/trace.rs")
            .unwrap();
        trace
            .lines
            .insert(1, "use std::sync::atomic::Ordering;".to_string());
        let findings = lint(&files);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "shim-bypass")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 2, "the test-tail use stays exempt");
    }

    #[test]
    fn the_real_workspace_is_clean() {
        // The acceptance bar: zero findings on the actual tree. Running
        // from the crate dir, the workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = run(&root).expect("workspace tree is readable");
        assert_eq!(
            findings,
            Vec::new(),
            "the linter must report zero findings on the committed tree"
        );
    }
}
