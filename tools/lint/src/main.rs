//! `quclassi-lint`: runs the workspace invariant rules and fails on any
//! finding (the CI `static-analysis` job's first gate; also runnable
//! locally with `cargo run -p quclassi-lint`).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks upward from the current directory to the workspace root (the
/// directory whose `Cargo.toml` declares `[workspace]`), so the binary
/// works both from the root and from a crate directory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match find_workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("quclassi-lint: no workspace root ([workspace] in Cargo.toml) above cwd");
            return ExitCode::FAILURE;
        }
    };
    let findings = match quclassi_lint::run(Path::new(&root)) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("quclassi-lint: failed to read the workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("quclassi-lint: ok (0 findings)");
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    eprintln!(
        "quclassi-lint: {} finding(s) — findings are denied",
        findings.len()
    );
    ExitCode::FAILURE
}
