//! Test-runner configuration and failure reporting.

use std::fmt;

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest honours PROPTEST_CASES the same way, which lets
        // CI pin an exact case count. The fallback is modest (upstream uses
        // 256) to bound `cargo test -q` time.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion inside the property body failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}
