//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// The size specification [`vec()`] accepts: an exact length or a half-open
/// length range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range must be non-empty");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
