//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the slice of proptest its property tests actually use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer/float ranges and strategy tuples,
//! * [`collection::vec`] with exact and ranged sizes,
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`test_runner::ProptestConfig`].
//!
//! Failing cases are reported with their case index and the deterministic
//! per-case seed; there is no shrinking. Generation is fully deterministic
//! per (test name, case index) — simply rerunning the failing test
//! regenerates the exact same inputs, so CI failures reproduce locally.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly `use`d surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop`: module-path access to the
    /// strategy constructors.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub mod __rt {
    use crate::strategy::Strategy;
    use crate::test_runner::{ProptestConfig, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic seed for (test name, case index). FNV-1a over the name
    /// bytes, mixed with the case index — a fixed algorithm, so the seed is
    /// stable across runs, platforms, and Rust releases (std's
    /// `DefaultHasher` explicitly is not).
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in test_name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= case as u64;
        h.wrapping_mul(0x0000_0100_0000_01B3)
    }

    /// Runs `body` for every case, generating inputs from `strategy`.
    pub fn run<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let seed = case_seed(test_name, case);
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            if let Err(err) = body(value) {
                panic!(
                    "proptest case {case}/{total} failed for `{test_name}` \
                     (seed {seed}): {err}. Generation is deterministic: \
                     rerunning this test reproduces the same inputs.",
                    total = config.cases,
                );
            }
        }
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
///
/// (In real test modules each function carries `#[test]` so the harness
/// collects it; the attribute is passed through unchanged.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strat,)+);
            $crate::__rt::run(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (with an
/// optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0usize..5).prop_map(|x| x * 2), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 10));
        }

        #[test]
        fn float_ranges_in_bounds(x in -6.3f64..6.3, y in 0.0f64..=1.0) {
            prop_assert!((-6.3..6.3).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f64..1.0, 5);
        let a = strat.generate(&mut StdRng::seed_from_u64(7));
        let b = strat.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
