//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
