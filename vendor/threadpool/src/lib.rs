//! Offline vendored scoped thread pool.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of a thread-pool crate the batch executor needs:
//! a fixed worker count and an ordered parallel map over a job list.
//!
//! The implementation is built on [`std::thread::scope`], so jobs may borrow
//! from the caller's stack (circuits, parameter sets, executors) without any
//! `'static` bounds or `Arc` plumbing. Work is distributed dynamically via an
//! atomic cursor, but results are written into their job's slot, so the
//! output order — and therefore every downstream computation — is identical
//! regardless of how many workers run or how the OS schedules them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size pool of scoped worker threads.
///
/// The pool itself holds no OS threads; workers are spawned inside a
/// [`std::thread::scope`] per [`ThreadPool::scoped_map`] call and joined
/// before it returns. This keeps the type trivially `Clone` and free of
/// shutdown logic while still amortising nothing worse than thread spawn
/// (~10 µs) per *batch*, which the batch sizes used here dwarf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool that runs jobs on `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero — a pool with no workers can never make
    /// progress, so the mistake is rejected at construction.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a thread pool needs at least one worker");
        ThreadPool { threads }
    }

    /// A pool that runs everything inline on the calling thread.
    pub fn single_threaded() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning results in input order.
    ///
    /// `f` receives each item's index alongside the item, so callers can
    /// derive per-job state (e.g. an RNG seed) from the stable job position
    /// rather than from scheduling order. With one worker (or zero/one
    /// items) the map runs inline with no thread machinery at all, so a
    /// single-threaded pool is bit-for-bit a plain sequential loop.
    ///
    /// If `f` panics on any job the panic propagates to the caller once all
    /// workers have stopped.
    pub fn scoped_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        self.scoped_map_with(items, || (), |i, t, ()| f(i, t))
    }

    /// Like [`ThreadPool::scoped_map`], but every worker carries a private
    /// mutable state created once by `init` and threaded through all the
    /// jobs that worker runs. This is the hook batch executors use to reuse
    /// scratch buffers (statevectors, matrices) *across* jobs instead of
    /// reallocating them per job.
    ///
    /// `init` runs once per worker (once total on the inline path), so
    /// per-batch setup cost is `O(workers)`, not `O(jobs)`. The state must
    /// not influence results in any order-dependent way if callers want
    /// thread-count-invariant output — a scratch buffer that is fully
    /// overwritten per job satisfies this trivially.
    pub fn scoped_map_with<T, U, S, I, F>(&self, items: Vec<T>, init: I, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, T, &mut S) -> U + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            let mut state = init();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t, &mut state))
                .collect();
        }
        let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let work = |state: &mut S| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = jobs[i]
                .lock()
                .expect("job slot poisoned")
                .take()
                .expect("job claimed twice");
            let out = f(i, item, state);
            *slots[i].lock().expect("result slot poisoned") = Some(out);
        };
        std::thread::scope(|scope| {
            // The calling thread participates as the last worker: it would
            // only block on the scope join otherwise, and one fewer spawn
            // measurably matters when a kernel dispatches per gate.
            for _ in 0..workers - 1 {
                scope.spawn(|| work(&mut init()));
            }
            work(&mut init());
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without producing its result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.scoped_map(items, |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let items: Vec<u64> = (0..57).collect();
        let f = |i: usize, x: u64| (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(x);
        let seq = ThreadPool::new(1).scoped_map(items.clone(), f);
        let par = ThreadPool::new(8).scoped_map(items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn borrows_from_the_caller_scope() {
        let data = [10usize, 20, 30];
        let pool = ThreadPool::new(2);
        let out = pool.scoped_map(vec![0usize, 1, 2], |_, i| data[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = ThreadPool::new(3).scoped_map(Vec::<usize>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = ThreadPool::new(16).scoped_map(vec![1, 2], |_, x| x * x);
        assert_eq!(out, vec![1, 4]);
    }

    #[test]
    fn per_worker_state_is_reused_across_jobs() {
        // Each worker's state counts the jobs it ran; the total across all
        // reported counts must equal the job count, and inline execution
        // must create exactly one state.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 4] {
            let out = ThreadPool::new(threads).scoped_map_with(
                items.clone(),
                || 0usize,
                |i, x, seen| {
                    *seen += 1;
                    (i, x, *seen)
                },
            );
            assert_eq!(out.len(), 64);
            for (i, (idx, x, seen)) in out.iter().enumerate() {
                assert_eq!(i, *idx);
                assert_eq!(i, *x);
                assert!(*seen >= 1);
            }
            if threads == 1 {
                // Inline path: one state threads through every job in order.
                assert_eq!(out.last().unwrap().2, 64);
            }
        }
    }
}
