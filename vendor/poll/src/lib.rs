//! Offline vendored minimal readiness-polling shim.
//!
//! The build container has no network access to crates.io, so — exactly as
//! `rand`/`proptest`/`criterion`/`threadpool` are vendored — this crate
//! vendors the tiny slice of a `mio`-like polling library the event-loop
//! wire server needs:
//!
//! * [`Poller`] — an `epoll` instance: register/modify/deregister file
//!   descriptors with a `usize` token and an [`Interest`] (readable,
//!   writable), and [`Poller::wait`] for readiness [`Events`].
//! * [`Waker`] — an `eventfd`-backed cross-thread wakeup: any thread calls
//!   [`Waker::wake`] and the poller owning the registered waker fd returns
//!   from `wait` with the waker's token. This is what makes event-loop
//!   shutdown and completion notification *deterministic*: no loopback
//!   connects, no arbitrary timeouts.
//! * [`nofile_limit`] / [`raise_nofile_limit`] — `RLIMIT_NOFILE` helpers so
//!   connection-scale tests and benches can size themselves to (and make
//!   the most of) the environment's file-descriptor budget.
//!
//! This is the **only** crate in the workspace that contains `unsafe`
//! code: the raw `epoll`/`eventfd`/`rlimit` syscalls are not exposed by
//! `std`, so they are declared here as `extern "C"` bindings against the
//! libc every Rust binary on Linux already links. Every call site carries
//! a `SAFETY:` justification; everything above this module boundary
//! (including all of `crates/*`) stays `forbid(unsafe_code)`.
//!
//! Linux-only by construction (`epoll` is a Linux API). On other targets
//! the same public API exists but every constructor returns
//! [`std::io::ErrorKind::Unsupported`], so the workspace still builds.

#![warn(missing_docs)]

/// Readiness interest: which conditions a registration wants reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Wake when the fd becomes readable (or the peer hangs up).
    pub const READABLE: Interest = Interest(1);
    /// Wake when the fd becomes writable.
    pub const WRITABLE: Interest = Interest(2);
    /// Wake on both readability and writability.
    pub const BOTH: Interest = Interest(3);

    /// Whether this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification returned by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: usize,
    readable: bool,
    writable: bool,
    error: bool,
    hangup: bool,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> usize {
        self.token
    }

    /// The fd is readable (data, an incoming connection, or a pending EOF).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// The fd is writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// An error condition is pending on the fd (`EPOLLERR`).
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer closed its end (`EPOLLHUP` / `EPOLLRDHUP`).
    pub fn is_hangup(&self) -> bool {
        self.hangup
    }
}

/// A reusable buffer of readiness [`Event`]s filled by [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a buffer that can report up to `capacity` events per wait.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a poller that can report nothing can
    /// never make progress.
    pub fn with_capacity(capacity: usize) -> Events {
        assert!(capacity > 0, "events capacity must be at least 1");
        Events {
            inner: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Iterates over the events of the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of events reported by the most recent wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the most recent wait reported no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Events, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    use std::os::raw::{c_int, c_uint, c_void};

    // The epoll/eventfd/rlimit syscall surface `std` does not expose,
    // bound against the libc already linked into every Rust binary.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const RLIMIT_NOFILE: c_int = 7;

    /// Mirror of the kernel's `struct epoll_event`. On x86-64 the C
    /// definition carries `__attribute__((packed))`; reproducing the exact
    /// layout is what keeps the `data` field (our token) intact.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    fn last_os_error_if(failed: bool) -> io::Result<()> {
        if failed {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// An `epoll` instance (see the crate docs).
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates a new epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is the documented error signal.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            last_os_error_if(epfd < 0)?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token as u64,
            };
            // SAFETY: `event` is a valid, live epoll_event for the duration
            // of the call; the kernel copies it before returning.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            last_os_error_if(rc < 0)
        }

        /// Starts watching `fd` under `token` for `interest`.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set (and token) of a registered fd.
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`. (The kernel also drops registrations
        /// automatically when the fd's last copy is closed.)
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demanded a non-null event pointer
            // for EPOLL_CTL_DEL; passing a valid dummy satisfies both eras.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
            last_os_error_if(rc < 0)
        }

        /// Blocks until at least one registered fd is ready, `timeout`
        /// elapses (`None` waits forever), or a signal arrives (retried
        /// internally). Fills `events` and returns the count.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                // Round *up* so a 100 µs deadline sleeps 1 ms instead of
                // busy-spinning on a 0 ms poll.
                Some(t) => {
                    let ms = t.as_millis().min(c_int::MAX as u128) as c_int;
                    if ms as u128 * 1_000_000 < t.as_nanos() {
                        ms.saturating_add(1)
                    } else {
                        ms
                    }
                }
                None => -1,
            };
            let capacity = events.capacity;
            let mut raw = vec![EpollEvent { events: 0, data: 0 }; capacity];
            let n = loop {
                // SAFETY: `raw` is a live buffer of exactly `capacity`
                // epoll_event slots; the kernel writes at most that many.
                let rc = unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), capacity as c_int, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            events.inner.clear();
            for slot in raw.iter().take(n) {
                let bits = slot.events;
                let data = slot.data;
                events.inner.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing an fd we exclusively own.
            unsafe { close(self.epfd) };
        }
    }

    /// An `eventfd`-backed cross-thread wakeup (see the crate docs).
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
        /// Collapses redundant wakes: `wake` is a no-op while a previous
        /// wake has not been drained, so N completion notifications cost
        /// one syscall, not N.
        armed: AtomicBool,
    }

    impl Waker {
        /// Creates a waker. Register [`Waker::as_raw_fd`] with a poller
        /// under a reserved token and call [`Waker::wake`] from any thread.
        pub fn new() -> io::Result<Waker> {
            // SAFETY: eventfd takes no pointers; negative return = error.
            let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            last_os_error_if(fd < 0)?;
            Ok(Waker {
                fd,
                armed: AtomicBool::new(false),
            })
        }

        /// The raw fd to register with a [`Poller`] (readable interest).
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Makes the owning poller's next (or current) `wait` return with
        /// this waker's token. Callable from any thread; idempotent until
        /// the loop drains it.
        pub fn wake(&self) {
            if self.armed.swap(true, Ordering::AcqRel) {
                return; // already pending; the eventfd counter is nonzero
            }
            let value: u64 = 1;
            // SAFETY: writing 8 bytes from a live u64 to an eventfd; the
            // only possible "failure" (EAGAIN on counter overflow) still
            // leaves the fd readable, which is all wake() promises.
            unsafe { write(self.fd, (&value as *const u64).cast(), 8) };
        }

        /// Consumes pending wakeups (call when the waker's token fires, so
        /// the level-triggered fd stops reporting readable).
        pub fn drain(&self) {
            self.armed.store(false, Ordering::Release);
            let mut value: u64 = 0;
            // SAFETY: reading 8 bytes into a live u64; EAGAIN (nothing
            // pending) is fine and ignored.
            unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing an fd we exclusively own.
            unsafe { close(self.fd) };
        }
    }

    /// Re-issues `listen(2)` on an already-listening socket to deepen its
    /// accept backlog (`std::net::TcpListener` hardcodes 128, which a
    /// connect storm overflows — the kernel then drops SYNs and clients
    /// stall a full retransmission timeout). The kernel silently caps the
    /// value at `net.core.somaxconn`.
    pub fn set_listener_backlog(fd: RawFd, backlog: u32) -> io::Result<()> {
        let backlog = backlog.min(c_int::MAX as u32) as c_int;
        // SAFETY: listen takes no pointers; the caller owns `fd`.
        let rc = unsafe { listen(fd, backlog) };
        last_os_error_if(rc < 0)
    }

    /// Returns the current `(soft, hard)` `RLIMIT_NOFILE` — the process's
    /// open-file-descriptor budget.
    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut limit = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `limit` is a live, correctly laid out rlimit struct the
        // kernel fills.
        let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) };
        last_os_error_if(rc < 0)?;
        Ok((limit.rlim_cur, limit.rlim_max))
    }

    /// Best-effort raises the soft `RLIMIT_NOFILE` to the hard limit
    /// (unprivileged processes may always do this) and returns the
    /// resulting soft limit. CI runners typically ship soft 1024 / hard
    /// 65536+, so connection-scale tests call this first.
    pub fn raise_nofile_limit() -> io::Result<u64> {
        let (soft, hard) = nofile_limit()?;
        if soft >= hard {
            return Ok(soft);
        }
        let limit = RLimit {
            rlim_cur: hard,
            rlim_max: hard,
        };
        // SAFETY: passing a live rlimit struct by const pointer.
        let rc = unsafe { setrlimit(RLIMIT_NOFILE, &limit) };
        last_os_error_if(rc < 0)?;
        Ok(hard)
    }

    /// Sets the soft `RLIMIT_NOFILE` to `soft` (clamped to the hard
    /// limit). Lowering the soft limit is always permitted and only
    /// affects *new* descriptor allocations, which is how fd-exhaustion
    /// tests provoke `EMFILE` deterministically without actually opening
    /// thousands of files.
    pub fn set_nofile_limit(soft: u64) -> io::Result<u64> {
        let (_, hard) = nofile_limit()?;
        let soft = soft.min(hard);
        let limit = RLimit {
            rlim_cur: soft,
            rlim_max: hard,
        };
        // SAFETY: passing a live rlimit struct by const pointer.
        let rc = unsafe { setrlimit(RLIMIT_NOFILE, &limit) };
        last_os_error_if(rc < 0)?;
        Ok(soft)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Non-Linux stub: the same API, every constructor unsupported.
    use super::{Events, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the vendored poll shim only implements epoll (Linux)",
        ))
    }

    /// Stub poller; every constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails on non-Linux targets.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn register(&self, _: RawFd, _: usize, _: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _: RawFd, _: usize, _: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn deregister(&self, _: RawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _: &mut Events, _: Option<Duration>) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Stub waker; every constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always fails on non-Linux targets.
        pub fn new() -> io::Result<Waker> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn as_raw_fd(&self) -> RawFd {
            unreachable!("no Waker can be constructed on non-Linux targets")
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    /// Always fails on non-Linux targets.
    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        unsupported()
    }

    /// Always fails on non-Linux targets.
    pub fn raise_nofile_limit() -> io::Result<u64> {
        unsupported()
    }

    /// Always fails on non-Linux targets.
    pub fn set_nofile_limit(_: u64) -> io::Result<u64> {
        unsupported()
    }

    /// Always fails on non-Linux targets.
    pub fn set_listener_backlog(_: RawFd, _: u32) -> io::Result<()> {
        unsupported()
    }
}

pub use imp::{
    nofile_limit, raise_nofile_limit, set_listener_backlog, set_nofile_limit, Poller, Waker,
};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn listener_readability_is_reported_with_its_token() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing pending yet: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("pending accept must report");
        assert_eq!(event.token(), 7);
        assert!(event.is_readable());
    }

    #[test]
    fn stream_write_readiness_and_peer_data() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poller
            .register(stream.as_raw_fd(), 3, Interest::BOTH)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // A fresh connected socket with empty buffers is writable.
        let event = events.iter().find(|e| e.token() == 3).unwrap();
        assert!(event.is_writable());
        assert!(!event.is_readable());

        peer.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().find(|e| e.token() == 3).unwrap();
        assert!(event.is_readable());

        // Interest can be narrowed: writable-only stops reporting reads.
        poller
            .modify(stream.as_raw_fd(), 3, Interest::WRITABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        let event = events.iter().find(|e| e.token() == 3).unwrap();
        assert!(event.is_writable());
        assert!(!event.is_readable());

        poller.deregister(stream.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd must stay silent");
    }

    #[test]
    fn hangup_is_reported_when_the_peer_disconnects() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poller
            .register(stream.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        drop(peer);
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().find(|e| e.token() == 1).unwrap();
        assert!(event.is_hangup());
        assert!(event.is_readable(), "hangup also reads as EOF-readable");
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .register(waker.as_raw_fd(), 0, Interest::READABLE)
            .unwrap();
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // redundant wakes collapse
        });
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake must unblock"
        );
        assert_eq!(events.iter().next().unwrap().token(), 0);
        waker.drain();
        // Drained: the level-triggered fd goes quiet again.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn nofile_limits_are_sane_and_raisable() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        let raised = raise_nofile_limit().unwrap();
        assert_eq!(raised, hard);
        let (soft_after, _) = nofile_limit().unwrap();
        assert_eq!(soft_after, hard);
    }

    #[test]
    fn zero_timeout_polls_without_blocking() {
        let poller = Poller::new().unwrap();
        let start = Instant::now();
        let mut events = Events::with_capacity(4);
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(events.is_empty());
    }
}
