//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), uniform range sampling for the
//! integer and float types the crates touch, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle`.
//!
//! Semantics match rand 0.8 (half-open and inclusive ranges, `gen::<f64>()`
//! uniform in `[0, 1)`, `gen_bool(p)` Bernoulli), but the exact bit streams
//! differ from the upstream crate. Everything in this repo that relies on
//! seeding relies only on *determinism*, never on upstream-identical
//! streams, so this is safe.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`). Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution, as `rand`'s
/// `Standard` distribution defines it.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
    i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64,
);

/// Range types [`Rng::gen_range`] accepts for an output type `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough integer sampling: multiply-shift maps 64 random bits onto
// the span (bias < 2^-32 for every span used in this workspace).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_span(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                // FP rounding of start + span*unit can land exactly on the
                // excluded end; clamp to the largest value below it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Scale a [0, 1) draw so the end-point is reachable in the
                // last representable step, mirroring rand's closed sampler.
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                if v > hi { hi } else { v }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a `u64` through SplitMix64, exactly the
    /// strategy rand 0.8 documents for `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[(rng.gen_range(-2i32..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
