//! Shadow `Mutex`, `Condvar`, and `RwLock`.
//!
//! Each shadow lock pairs an engine-side lock model (scheduling, blocking,
//! happens-before clocks) with a real `std::sync` lock that stores the data.
//! Because the engine serialises model threads, the inner std lock is always
//! free when the model grants an acquisition, so `try_lock` on it cannot
//! fail — this keeps the checker free of `unsafe` interior-mutability code.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{
    LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard, TryLockError,
    TryLockResult,
};
use std::time::Duration;

use crate::engine::with_current;

/// Shadow of [`std::sync::Mutex`]. Panics inside model threads abort the
/// whole iteration, so guards are never poisoned: lock results are always
/// `Ok`, which is API-compatible with the std poisoning signatures.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    handle: StdAtomicU64,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a shadow mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            handle: StdAtomicU64::new(0),
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Model-checked blocking acquisition.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let mx = with_current(|e, me| e.mutex_lock(me, &self.handle));
        Ok(self.guard(mx))
    }

    /// Model-checked non-blocking acquisition.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match with_current(|e, me| e.mutex_try_lock(me, &self.handle)) {
            Some(mx) => Ok(self.guard(mx)),
            None => Err(TryLockError::WouldBlock),
        }
    }

    fn guard(&self, mx: usize) -> MutexGuard<'_, T> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model serialisation violated: inner mutex held")
            }
        };
        MutexGuard {
            lock: self,
            mx,
            inner: Some(inner),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for a shadow [`Mutex`]; releasing it is a visible operation.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    mx: usize,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            let mx = self.mx;
            with_current(|e, me| e.mutex_unlock(me, mx));
        }
    }
}

/// Result of a shadow [`Condvar::wait_timeout`]; mirrors
/// [`std::sync::WaitTimeoutResult`], which has no public constructor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Shadow of [`std::sync::Condvar`]: no spurious wakeups, FIFO wake order,
/// and `wait_timeout` always times out immediately (a correct protocol must
/// tolerate the most hostile timer, and this keeps exploration finite).
#[derive(Debug, Default)]
pub struct Condvar {
    handle: StdAtomicU64,
}

impl Condvar {
    /// Creates a shadow condvar.
    pub const fn new() -> Self {
        Condvar {
            handle: StdAtomicU64::new(0),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified.
    pub fn wait<'a, T: ?Sized>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> LockResult<MutexGuard<'a, T>> {
        let cv = with_current(|e, _| e.condvar_register(&self.handle));
        let lock = guard.lock;
        let mx = guard.mx;
        // Hand the inner std guard back before parking; the engine performs
        // the model-side release inside condvar_wait, so the guard's Drop
        // must not release again — clearing `inner` disarms it.
        guard.inner.take();
        drop(guard);
        with_current(|e, me| e.condvar_wait(me, cv, mx));
        Ok(lock.guard(mx))
    }

    /// Modelled as an immediate timeout: yields a schedule point, keeps the
    /// mutex, and reports `timed_out() == true` without ever parking.
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let _ = with_current(|e, _| e.condvar_register(&self.handle));
        with_current(|e, me| e.yield_point(me));
        Ok((guard, WaitTimeoutResult { timed_out: true }))
    }

    /// Wakes the longest-parked waiter, if any.
    pub fn notify_one(&self) {
        let cv = with_current(|e, _| e.condvar_register(&self.handle));
        with_current(|e, me| e.condvar_notify(me, cv, false));
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        let cv = with_current(|e, _| e.condvar_register(&self.handle));
        with_current(|e, me| e.condvar_notify(me, cv, true));
    }
}

/// Shadow of [`std::sync::RwLock`]. Readers synchronise with writers (both
/// directions) but not with other readers, matching the std contract.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    handle: StdAtomicU64,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a shadow rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            handle: StdAtomicU64::new(0),
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Model-checked shared acquisition.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let rw = with_current(|e, me| e.rwlock_read(me, &self.handle));
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model serialisation violated: inner rwlock write-held")
            }
        };
        Ok(RwLockReadGuard {
            rw,
            inner: Some(inner),
        })
    }

    /// Model-checked exclusive acquisition.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let rw = with_current(|e, me| e.rwlock_write(me, &self.handle));
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model serialisation violated: inner rwlock held")
            }
        };
        Ok(RwLockWriteGuard {
            rw,
            inner: Some(inner),
        })
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shared guard for a shadow [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    rw: usize,
    inner: Option<StdRwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            let rw = self.rw;
            with_current(|e, me| e.rwlock_unlock_read(me, rw));
        }
    }
}

/// Exclusive guard for a shadow [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    rw: usize,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            let rw = self.rw;
            with_current(|e, me| e.rwlock_unlock_write(me, rw));
        }
    }
}
