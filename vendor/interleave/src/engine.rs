//! The exploration engine: serialized model threads, DFS over schedule and
//! value choices, and the per-memory-order happens-before model.
//!
//! Execution model: every model thread is a real OS thread, but a global
//! baton (mutex + condvar) keeps exactly one runnable at a time. Each
//! *visible operation* (atomic access, fence, lock op, cell access) passes
//! through [`Engine::begin_op`], which consults the DFS path to decide which
//! thread executes next and whether a relaxed load observes a stale store.
//! Replaying the recorded prefix and incrementing the last un-exhausted
//! choice enumerates every schedule within the preemption bound — the
//! backtracking half of DPOR-style exploration, with the preemption bound as
//! the reduction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VClock;

pub use std::sync::atomic::Ordering;

/// Process-wide iteration epoch used to lazily re-register static shadow
/// atomics: a shadow handle caches `(epoch, location-id)` and re-registers
/// itself whenever the engine's epoch has moved on.
static EPOCH: StdAtomicU64 = StdAtomicU64::new(0);

/// Serialises whole explorations: two concurrent `check` calls in one
/// process (e.g. two `#[test]`s) would otherwise share thread-locals and
/// mutation flags in undefined ways.
static EXPLORATION: StdMutex<()> = StdMutex::new(());

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the calling model thread's engine handle and thread id.
///
/// # Panics
/// Panics when called from outside a model closure — the shadow types only
/// work under [`crate::check`].
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Engine>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (engine, me) = b
            .as_ref()
            .expect("interleave sync primitive used outside an interleave::check model closure");
        f(engine, *me)
    })
}

/// Sentinel panic payload used to unwind model threads when the current
/// iteration is being torn down (failure elsewhere, or deadlock).
struct Abort;

pub(crate) fn panic_abort() -> ! {
    std::panic::panic_any(Abort)
}

/// How an exploration is configured. See [`crate::Builder`] for the public
/// wrapper with documented defaults.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of *preemptive* context switches per execution.
    pub preemption_bound: usize,
    /// Iteration budget before the exploration gives up.
    pub max_iterations: usize,
    /// Number of trailing events kept for failure traces.
    pub max_trace: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_iterations: 200_000,
            max_trace: 200,
        }
    }
}

/// One DFS decision: which alternative was taken out of how many.
#[derive(Clone, Copy, Debug)]
struct Choice {
    taken: usize,
    total: usize,
}

/// The DFS path: a recorded prefix that is replayed, then extended with
/// first-alternative choices. `advance` flips the deepest non-exhausted
/// choice to enumerate the next execution.
#[derive(Default)]
struct Path {
    choices: Vec<Choice>,
    cursor: usize,
}

impl Path {
    fn choose(&mut self, total: usize) -> usize {
        debug_assert!(total > 1, "choice points need at least two alternatives");
        if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            self.cursor += 1;
            debug_assert_eq!(
                c.total, total,
                "non-deterministic model closure: replay found a different branch arity"
            );
            c.taken.min(total - 1)
        } else {
            self.choices.push(Choice { taken: 0, total });
            self.cursor += 1;
            0
        }
    }

    /// Moves to the next unexplored execution; false when the tree is done.
    fn advance(&mut self) -> bool {
        while let Some(last) = self.choices.last_mut() {
            if last.taken + 1 < last.total {
                last.taken += 1;
                self.cursor = 0;
                return true;
            }
            self.choices.pop();
        }
        false
    }

    fn render(&self) -> String {
        let parts: Vec<String> = self
            .choices
            .iter()
            .map(|c| format!("{}/{}", c.taken, c.total))
            .collect();
        parts.join(" ")
    }
}

/// What a model thread is currently waiting for, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    /// Waiting to acquire a model mutex.
    Mutex(usize),
    /// Parked on a condvar; holds (condvar id, mutex id to re-acquire).
    CondWait(usize, usize),
    /// Waiting for a shared rwlock acquisition.
    RwRead(usize),
    /// Waiting for an exclusive rwlock acquisition.
    RwWrite(usize),
    /// Waiting for another model thread to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSt {
    clock: VClock,
    state: Run,
    /// Set (together with `active == id`) when the scheduler hands this
    /// thread the baton; consumed exactly once at each resume point.
    granted: bool,
    /// Clock snapshot of the latest `fence(Release)`, stamped onto
    /// subsequent relaxed stores (fence-to-acquire synchronisation).
    fence_rel: Option<VClock>,
    /// Accumulated `msg` clocks of relaxed loads, published into the thread
    /// clock by a later `fence(Acquire)` (acquire-fence synchronisation).
    acq_pending: VClock,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        ThreadSt {
            clock,
            state: Run::Runnable,
            granted: false,
            fence_rel: None,
            acq_pending: VClock::new(),
        }
    }
}

/// One entry in an atomic location's modification order.
struct StoreRecord {
    value: u64,
    /// The storing thread's clock at the store: used for coherence floors.
    when: VClock,
    /// What an acquire load of this store synchronises with: the storer's
    /// clock for release stores, the release-fence snapshot for relaxed
    /// stores after a fence, and the carried release-sequence clock for
    /// read-modify-writes.
    msg: VClock,
}

struct Location {
    stores: Vec<StoreRecord>,
    /// Per-thread read floor into `stores` (read-read coherence).
    seen: Vec<usize>,
}

impl Location {
    fn seen_for(&mut self, t: usize) -> usize {
        if self.seen.len() <= t {
            self.seen.resize(t + 1, 0);
        }
        self.seen[t]
    }
}

struct MutexSt {
    locked: bool,
    /// Join of every unlocker's clock; acquirers join it (release/acquire).
    clock: VClock,
}

struct CondvarSt {
    /// FIFO of parked thread ids. `notify_one` wakes the head — the model
    /// does not branch over wake order and has no spurious wakeups.
    waiters: VecDeque<usize>,
}

struct RwSt {
    writer: bool,
    readers: usize,
    /// Joined by *every* unlock; write acquirers join it.
    clock_for_writers: VClock,
    /// Joined only by writer unlocks; read acquirers join it. Readers do
    /// not synchronise with other readers, matching `std::sync::RwLock`.
    clock_for_readers: VClock,
}

struct CellSt {
    write_clock: VClock,
    read_clocks: VClock,
}

/// A recorded visible operation, for failure traces.
struct Event {
    thread: usize,
    what: String,
}

struct Failure {
    message: String,
    trace: Vec<String>,
    dropped: usize,
    path: String,
}

struct EngineState {
    epoch: u64,
    config: Config,
    path: Path,
    threads: Vec<ThreadSt>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    active: usize,
    alive: usize,
    preemptions: usize,
    locations: Vec<Location>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CondvarSt>,
    rwlocks: Vec<RwSt>,
    cells: Vec<CellSt>,
    events: VecDeque<Event>,
    events_dropped: usize,
    failure: Option<Failure>,
    aborting: bool,
    iteration_done: bool,
}

impl EngineState {
    fn is_enabled(&self, t: usize) -> bool {
        match self.threads[t].state {
            Run::Runnable => true,
            Run::Blocked(Block::Mutex(m)) => !self.mutexes[m].locked,
            Run::Blocked(Block::CondWait(..)) => false,
            Run::Blocked(Block::RwRead(r)) => !self.rwlocks[r].writer,
            Run::Blocked(Block::RwWrite(r)) => {
                !self.rwlocks[r].writer && self.rwlocks[r].readers == 0
            }
            Run::Blocked(Block::Join(t2)) => self.threads[t2].state == Run::Finished,
            Run::Finished => false,
        }
    }

    fn enabled_threads(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.is_enabled(t))
            .collect()
    }

    fn push_event(&mut self, thread: usize, what: String) {
        if self.events.len() >= self.config.max_trace {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(Event { thread, what });
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                message,
                trace: self
                    .events
                    .iter()
                    .map(|e| format!("  [thread {}] {}", e.thread, e.what))
                    .collect(),
                dropped: self.events_dropped,
                path: self.path.render(),
            });
        }
        self.aborting = true;
    }
}

type Guard<'a> = StdMutexGuard<'a, EngineState>;

/// The shared exploration engine: one per `check` call, shared by every
/// shadow primitive through the thread-local [`with_current`] handle.
pub(crate) struct Engine {
    state: StdMutex<EngineState>,
    cv: StdCondvar,
}

fn pack(epoch: u64, idx: usize) -> u64 {
    ((epoch & 0xffff_ffff) << 32) | ((idx as u64 + 1) & 0xffff_ffff)
}

fn unpack(raw: u64) -> (u64, Option<usize>) {
    let idx = raw & 0xffff_ffff;
    (
        raw >> 32,
        if idx == 0 {
            None
        } else {
            Some((idx - 1) as usize)
        },
    )
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Engine {
    fn new(config: Config) -> Self {
        Engine {
            state: StdMutex::new(EngineState {
                epoch: 0,
                config,
                path: Path::default(),
                threads: Vec::new(),
                os_handles: Vec::new(),
                active: 0,
                alive: 0,
                preemptions: 0,
                locations: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                rwlocks: Vec::new(),
                cells: Vec::new(),
                events: VecDeque::new(),
                events_dropped: 0,
                failure: None,
                aborting: false,
                iteration_done: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks the calling model thread until the scheduler hands it the
    /// baton; consumes the grant. Panics with [`Abort`] during teardown.
    fn wait_until_granted<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if g.aborting {
                drop(g);
                panic_abort();
            }
            if g.active == me && g.threads[me].granted {
                g.threads[me].granted = false;
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Hands the baton to `pick` (making it runnable) and wakes it.
    fn hand_off(&self, g: &mut Guard<'_>, pick: usize) {
        g.threads[pick].state = Run::Runnable;
        g.threads[pick].granted = true;
        g.active = pick;
        self.cv.notify_all();
    }

    /// Visible-op prologue: schedule point (possible preemption branch),
    /// then tick the thread clock. Returns the state guard for the op body.
    fn begin_op(&self, me: usize) -> Guard<'_> {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            panic_abort();
        }
        debug_assert_eq!(g.active, me, "baton violation: inactive thread ran an op");
        if g.preemptions < g.config.preemption_bound {
            let enabled = g.enabled_threads();
            if enabled.len() > 1 {
                let mut options = vec![me];
                options.extend(enabled.into_iter().filter(|&t| t != me));
                let total = options.len();
                let pick = options[g.path.choose(total)];
                if pick != me {
                    g.preemptions += 1;
                    self.hand_off(&mut g, pick);
                    g = self.wait_until_granted(g, me);
                }
            }
        }
        g.threads[me].clock.tick(me);
        g
    }

    /// Blocks the calling thread with reason `kind`, hands the baton to some
    /// enabled thread (deadlock failure if none), and parks until granted.
    fn block_and_yield<'a>(&'a self, mut g: Guard<'a>, me: usize, kind: Block) -> Guard<'a> {
        g.threads[me].state = Run::Blocked(kind);
        let enabled = g.enabled_threads();
        if enabled.is_empty() {
            let states: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .map(|(t, th)| format!("thread {t}: {:?}", th.state))
                .collect();
            g.fail(format!(
                "deadlock: every live thread is blocked ({})",
                states.join("; ")
            ));
            self.cv.notify_all();
            drop(g);
            panic_abort();
        }
        let pick = if enabled.len() == 1 {
            enabled[0]
        } else {
            let total = enabled.len();
            enabled[g.path.choose(total)]
        };
        self.hand_off(&mut g, pick);
        self.wait_until_granted(g, me)
    }

    // ------------------------------------------------------------------
    // Atomics
    // ------------------------------------------------------------------

    /// Resolves a shadow atomic's handle to a location id, registering it
    /// with `init` as the sole store if this epoch hasn't seen it yet.
    fn resolve(&self, g: &mut Guard<'_>, handle: &StdAtomicU64, init: u64, mask: u64) -> usize {
        let raw = handle.load(StdOrdering::Relaxed);
        let (epoch, idx) = unpack(raw);
        if let Some(idx) = idx {
            if epoch == (g.epoch & 0xffff_ffff) && idx < g.locations.len() {
                return idx;
            }
        }
        let idx = g.locations.len();
        g.locations.push(Location {
            stores: vec![StoreRecord {
                value: init & mask,
                when: VClock::new(),
                msg: VClock::new(),
            }],
            seen: Vec::new(),
        });
        handle.store(pack(g.epoch, idx), StdOrdering::Relaxed);
        idx
    }

    pub(crate) fn atomic_load(
        &self,
        me: usize,
        handle: &StdAtomicU64,
        init: u64,
        mask: u64,
        ord: Ordering,
    ) -> u64 {
        assert!(
            !matches!(ord, Ordering::Release | Ordering::AcqRel),
            "there is no such thing as a release load"
        );
        if std::thread::panicking() {
            let mut g = self.lock();
            let idx = self.resolve(&mut g, handle, init, mask);
            return g.locations[idx].stores.last().map_or(init, |s| s.value);
        }
        let mut g = self.begin_op(me);
        let idx = self.resolve(&mut g, handle, init, mask);
        let clock = g.threads[me].clock.clone();
        let loc = &mut g.locations[idx];
        let mut floor = loc.seen_for(me);
        for i in floor + 1..loc.stores.len() {
            if loc.stores[i].when.le(&clock) {
                floor = i;
            }
        }
        let candidates = loc.stores.len() - floor;
        let pick = if candidates == 1 {
            floor
        } else {
            let top = loc.stores.len() - 1;
            // Choice 0 reads the newest store so mutated (buggy) protocols
            // hit their counterexample interleavings early in the DFS.
            top - g.path.choose(candidates)
        };
        let loc = &mut g.locations[idx];
        loc.seen[me] = pick;
        let value = loc.stores[pick].value;
        let msg = loc.stores[pick].msg.clone();
        if is_acquire(ord) {
            g.threads[me].clock.join(&msg);
        } else {
            g.threads[me].acq_pending.join(&msg);
        }
        g.push_event(me, format!("load loc{idx} -> {value} ({ord:?})"));
        value
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        handle: &StdAtomicU64,
        init: u64,
        mask: u64,
        ord: Ordering,
        value: u64,
    ) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "there is no such thing as an acquire store"
        );
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        let idx = self.resolve(&mut g, handle, init, mask);
        let when = g.threads[me].clock.clone();
        let msg = if is_release(ord) {
            when.clone()
        } else {
            g.threads[me].fence_rel.clone().unwrap_or_default()
        };
        let loc = &mut g.locations[idx];
        loc.stores.push(StoreRecord {
            value: value & mask,
            when,
            msg,
        });
        let last = loc.stores.len() - 1;
        loc.seen_for(me);
        loc.seen[me] = last;
        g.push_event(me, format!("store loc{idx} <- {value} ({ord:?})"));
    }

    /// The shared read-modify-write core. `f` sees the newest value in
    /// modification order; returning `None` means "don't write" (failed
    /// compare-exchange), in which case `failure_ord` governs the read.
    #[allow(clippy::too_many_arguments)] // one call site per atomic op; a params struct would obscure it
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        handle: &StdAtomicU64,
        init: u64,
        mask: u64,
        success_ord: Ordering,
        failure_ord: Ordering,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> (u64, Option<u64>) {
        if std::thread::panicking() {
            let mut g = self.lock();
            let idx = self.resolve(&mut g, handle, init, mask);
            let old = g.locations[idx].stores.last().map_or(init, |s| s.value);
            return (old, None);
        }
        let mut g = self.begin_op(me);
        let idx = self.resolve(&mut g, handle, init, mask);
        let last = g.locations[idx].stores.len() - 1;
        let old = g.locations[idx].stores[last].value;
        let new = f(old);
        let read_ord = if new.is_some() {
            success_ord
        } else {
            failure_ord
        };
        let msg_of_read = g.locations[idx].stores[last].msg.clone();
        if is_acquire(read_ord) {
            g.threads[me].clock.join(&msg_of_read);
        } else {
            g.threads[me].acq_pending.join(&msg_of_read);
        }
        {
            let loc = &mut g.locations[idx];
            loc.seen_for(me);
            loc.seen[me] = last;
        }
        if let Some(v) = new {
            // RMWs continue the release sequence of the store they read:
            // the carried msg stays visible to later acquire loads.
            let mut msg = msg_of_read;
            if let Some(fr) = &g.threads[me].fence_rel {
                msg.join(&fr.clone());
            }
            if is_release(success_ord) {
                let clk = g.threads[me].clock.clone();
                msg.join(&clk);
            }
            let when = g.threads[me].clock.clone();
            let loc = &mut g.locations[idx];
            loc.stores.push(StoreRecord {
                value: v & mask,
                when,
                msg,
            });
            let newest = loc.stores.len() - 1;
            loc.seen[me] = newest;
            g.push_event(
                me,
                format!("rmw loc{idx} {old} -> {} ({success_ord:?})", v & mask),
            );
        } else {
            g.push_event(
                me,
                format!("rmw-fail loc{idx} read {old} ({failure_ord:?})"),
            );
        }
        (old, new)
    }

    pub(crate) fn atomic_fence(&self, me: usize, ord: Ordering) {
        assert!(
            ord != Ordering::Relaxed,
            "there is no such thing as a relaxed fence"
        );
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        if is_acquire(ord) {
            let pending = g.threads[me].acq_pending.clone();
            g.threads[me].clock.join(&pending);
        }
        if is_release(ord) {
            let snapshot = g.threads[me].clock.clone();
            g.threads[me].fence_rel = Some(snapshot);
        }
        g.push_event(me, format!("fence ({ord:?})"));
    }

    // ------------------------------------------------------------------
    // Mutex / Condvar / RwLock
    // ------------------------------------------------------------------

    pub(crate) fn mutex_register(&self, handle: &StdAtomicU64) -> usize {
        let mut g = self.lock();
        let raw = handle.load(StdOrdering::Relaxed);
        let (epoch, idx) = unpack(raw);
        if let Some(idx) = idx {
            if epoch == (g.epoch & 0xffff_ffff) && idx < g.mutexes.len() {
                return idx;
            }
        }
        let idx = g.mutexes.len();
        g.mutexes.push(MutexSt {
            locked: false,
            clock: VClock::new(),
        });
        handle.store(pack(g.epoch, idx), StdOrdering::Relaxed);
        idx
    }

    pub(crate) fn mutex_lock(&self, me: usize, handle: &StdAtomicU64) -> usize {
        let mx = self.mutex_register(handle);
        if std::thread::panicking() {
            return mx;
        }
        let mut g = self.begin_op(me);
        loop {
            if !g.mutexes[mx].locked {
                g.mutexes[mx].locked = true;
                let clk = g.mutexes[mx].clock.clone();
                g.threads[me].clock.join(&clk);
                g.push_event(me, format!("mutex{mx} lock"));
                return mx;
            }
            g = self.block_and_yield(g, me, Block::Mutex(mx));
        }
    }

    pub(crate) fn mutex_try_lock(&self, me: usize, handle: &StdAtomicU64) -> Option<usize> {
        let mx = self.mutex_register(handle);
        if std::thread::panicking() {
            return Some(mx);
        }
        let mut g = self.begin_op(me);
        if g.mutexes[mx].locked {
            g.push_event(me, format!("mutex{mx} try_lock -> busy"));
            return None;
        }
        g.mutexes[mx].locked = true;
        let clk = g.mutexes[mx].clock.clone();
        g.threads[me].clock.join(&clk);
        g.push_event(me, format!("mutex{mx} try_lock -> acquired"));
        Some(mx)
    }

    pub(crate) fn mutex_unlock(&self, me: usize, mx: usize) {
        if std::thread::panicking() {
            let mut g = self.lock();
            g.mutexes[mx].locked = false;
            self.cv.notify_all();
            return;
        }
        let mut g = self.begin_op(me);
        debug_assert!(g.mutexes[mx].locked, "unlock of an unlocked model mutex");
        g.mutexes[mx].locked = false;
        let clk = g.threads[me].clock.clone();
        g.mutexes[mx].clock.join(&clk);
        g.push_event(me, format!("mutex{mx} unlock"));
    }

    pub(crate) fn condvar_register(&self, handle: &StdAtomicU64) -> usize {
        let mut g = self.lock();
        let raw = handle.load(StdOrdering::Relaxed);
        let (epoch, idx) = unpack(raw);
        if let Some(idx) = idx {
            if epoch == (g.epoch & 0xffff_ffff) && idx < g.condvars.len() {
                return idx;
            }
        }
        let idx = g.condvars.len();
        g.condvars.push(CondvarSt {
            waiters: VecDeque::new(),
        });
        handle.store(pack(g.epoch, idx), StdOrdering::Relaxed);
        idx
    }

    /// Releases `mx`, parks on `cv`, and re-acquires `mx` once notified.
    /// The model has no spurious wakeups and wakes waiters in FIFO order.
    pub(crate) fn condvar_wait(&self, me: usize, cv: usize, mx: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        debug_assert!(g.mutexes[mx].locked, "condvar wait without the mutex held");
        g.mutexes[mx].locked = false;
        let clk = g.threads[me].clock.clone();
        g.mutexes[mx].clock.join(&clk);
        g.condvars[cv].waiters.push_back(me);
        g.push_event(me, format!("condvar{cv} wait (released mutex{mx})"));
        g = self.block_and_yield(g, me, Block::CondWait(cv, mx));
        // Granted ⇒ we were notified (state moved to Blocked(Mutex)) and the
        // mutex is free; the baton guarantees nobody raced us to it.
        debug_assert!(
            !g.mutexes[mx].locked,
            "granted condvar waiter found mutex held"
        );
        g.mutexes[mx].locked = true;
        let clk = g.mutexes[mx].clock.clone();
        g.threads[me].clock.join(&clk);
        g.push_event(me, format!("condvar{cv} woke (re-acquired mutex{mx})"));
    }

    pub(crate) fn condvar_notify(&self, me: usize, cv: usize, all: bool) {
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        let n = if all { g.condvars[cv].waiters.len() } else { 1 };
        for _ in 0..n {
            let Some(w) = g.condvars[cv].waiters.pop_front() else {
                break;
            };
            if let Run::Blocked(Block::CondWait(_, mx)) = g.threads[w].state {
                g.threads[w].state = Run::Blocked(Block::Mutex(mx));
            }
        }
        g.push_event(
            me,
            format!("condvar{cv} notify_{}", if all { "all" } else { "one" }),
        );
    }

    pub(crate) fn rwlock_register(&self, handle: &StdAtomicU64) -> usize {
        let mut g = self.lock();
        let raw = handle.load(StdOrdering::Relaxed);
        let (epoch, idx) = unpack(raw);
        if let Some(idx) = idx {
            if epoch == (g.epoch & 0xffff_ffff) && idx < g.rwlocks.len() {
                return idx;
            }
        }
        let idx = g.rwlocks.len();
        g.rwlocks.push(RwSt {
            writer: false,
            readers: 0,
            clock_for_writers: VClock::new(),
            clock_for_readers: VClock::new(),
        });
        handle.store(pack(g.epoch, idx), StdOrdering::Relaxed);
        idx
    }

    pub(crate) fn rwlock_read(&self, me: usize, handle: &StdAtomicU64) -> usize {
        let rw = self.rwlock_register(handle);
        if std::thread::panicking() {
            return rw;
        }
        let mut g = self.begin_op(me);
        loop {
            if !g.rwlocks[rw].writer {
                g.rwlocks[rw].readers += 1;
                let clk = g.rwlocks[rw].clock_for_readers.clone();
                g.threads[me].clock.join(&clk);
                g.push_event(me, format!("rwlock{rw} read-lock"));
                return rw;
            }
            g = self.block_and_yield(g, me, Block::RwRead(rw));
        }
    }

    pub(crate) fn rwlock_write(&self, me: usize, handle: &StdAtomicU64) -> usize {
        let rw = self.rwlock_register(handle);
        if std::thread::panicking() {
            return rw;
        }
        let mut g = self.begin_op(me);
        loop {
            if !g.rwlocks[rw].writer && g.rwlocks[rw].readers == 0 {
                g.rwlocks[rw].writer = true;
                let clk = g.rwlocks[rw].clock_for_writers.clone();
                g.threads[me].clock.join(&clk);
                g.push_event(me, format!("rwlock{rw} write-lock"));
                return rw;
            }
            g = self.block_and_yield(g, me, Block::RwWrite(rw));
        }
    }

    pub(crate) fn rwlock_unlock_read(&self, me: usize, rw: usize) {
        if std::thread::panicking() {
            let mut g = self.lock();
            g.rwlocks[rw].readers = g.rwlocks[rw].readers.saturating_sub(1);
            self.cv.notify_all();
            return;
        }
        let mut g = self.begin_op(me);
        g.rwlocks[rw].readers -= 1;
        let clk = g.threads[me].clock.clone();
        g.rwlocks[rw].clock_for_writers.join(&clk);
        g.push_event(me, format!("rwlock{rw} read-unlock"));
    }

    pub(crate) fn rwlock_unlock_write(&self, me: usize, rw: usize) {
        if std::thread::panicking() {
            let mut g = self.lock();
            g.rwlocks[rw].writer = false;
            self.cv.notify_all();
            return;
        }
        let mut g = self.begin_op(me);
        g.rwlocks[rw].writer = false;
        let clk = g.threads[me].clock.clone();
        g.rwlocks[rw].clock_for_writers.join(&clk);
        g.rwlocks[rw].clock_for_readers.join(&clk);
        g.push_event(me, format!("rwlock{rw} write-unlock"));
    }

    // ------------------------------------------------------------------
    // ModelCell race detection
    // ------------------------------------------------------------------

    pub(crate) fn cell_register(&self, handle: &StdAtomicU64) -> usize {
        let mut g = self.lock();
        let raw = handle.load(StdOrdering::Relaxed);
        let (epoch, idx) = unpack(raw);
        if let Some(idx) = idx {
            if epoch == (g.epoch & 0xffff_ffff) && idx < g.cells.len() {
                return idx;
            }
        }
        let idx = g.cells.len();
        g.cells.push(CellSt {
            write_clock: VClock::new(),
            read_clocks: VClock::new(),
        });
        handle.store(pack(g.epoch, idx), StdOrdering::Relaxed);
        idx
    }

    pub(crate) fn cell_access(&self, me: usize, handle: &StdAtomicU64, write: bool) {
        let idx = self.cell_register(handle);
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        let clock = g.threads[me].clock.clone();
        let racy = {
            let cell = &g.cells[idx];
            if write {
                !cell.write_clock.le(&clock) || !cell.read_clocks.le(&clock)
            } else {
                !cell.write_clock.le(&clock)
            }
        };
        if racy {
            let kind = if write { "write" } else { "read" };
            g.fail(format!(
                "data race: unsynchronised {kind} of cell{idx} by thread {me} \
                 concurrent with a prior access"
            ));
            self.cv.notify_all();
            drop(g);
            panic_abort();
        }
        let cell = &mut g.cells[idx];
        if write {
            cell.write_clock = clock;
            cell.read_clocks = VClock::new();
            g.push_event(me, format!("cell{idx} write"));
        } else {
            let tick = clock.get(me);
            cell.read_clocks.set(me, tick);
            g.push_event(me, format!("cell{idx} read"));
        }
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Spawns a model thread running `f`; returns its model thread id.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        me: usize,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> usize {
        let mut g = self.begin_op(me);
        let child = g.threads.len();
        let mut clock = g.threads[me].clock.clone();
        clock.tick(child);
        g.threads.push(ThreadSt::new(clock));
        g.alive += 1;
        g.push_event(me, format!("spawn thread {child}"));
        let engine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("interleave-{child}"))
            .spawn(move || run_model_thread(engine, child, f))
            .expect("failed to spawn a model OS thread");
        g.os_handles.push(handle);
        child
    }

    /// Blocks until model thread `target` finishes, joining its final clock.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut g = self.begin_op(me);
        while g.threads[target].state != Run::Finished {
            g = self.block_and_yield(g, me, Block::Join(target));
        }
        let clk = g.threads[target].clock.clone();
        g.threads[me].clock.join(&clk);
        g.push_event(me, format!("joined thread {target}"));
    }

    /// Pure schedule point with no memory effect (`yield_now`).
    pub(crate) fn yield_point(&self, me: usize) {
        if std::thread::panicking() {
            return;
        }
        let g = self.begin_op(me);
        drop(g);
    }

    /// Marks `me` finished and passes the baton on (or ends the iteration).
    fn finish_thread(&self, me: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut g = self.lock();
        g.threads[me].state = Run::Finished;
        g.threads[me].clock.tick(me);
        g.alive -= 1;
        if let Some(p) = panic_payload {
            if !p.is::<Abort>() {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                g.fail(format!("model thread {me} panicked: {msg}"));
            }
        }
        g.push_event(me, "finished".to_string());
        if g.alive == 0 {
            g.iteration_done = true;
            self.cv.notify_all();
            return;
        }
        if g.aborting {
            self.cv.notify_all();
            return;
        }
        let enabled = g.enabled_threads();
        if enabled.is_empty() {
            let states: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .map(|(t, th)| format!("thread {t}: {:?}", th.state))
                .collect();
            g.fail(format!(
                "deadlock: every live thread is blocked ({})",
                states.join("; ")
            ));
            self.cv.notify_all();
            return;
        }
        let pick = if enabled.len() == 1 {
            enabled[0]
        } else {
            let total = enabled.len();
            enabled[g.path.choose(total)]
        };
        self.hand_off(&mut g, pick);
    }
}

/// The OS-thread wrapper around one model thread's closure.
fn run_model_thread(engine: Arc<Engine>, me: usize, f: Box<dyn FnOnce() + Send + 'static>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&engine), me)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let g = engine.lock();
        let g = engine.wait_until_granted(g, me);
        drop(g);
        f();
    }));
    engine.finish_thread(me, result.err());
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Outcome of a completed exploration. See [`crate::check`].
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct executions explored.
    pub iterations: usize,
    /// Whether the schedule/value tree was exhausted within the iteration
    /// budget (true) or the budget ran out first (false).
    pub complete: bool,
}

/// Runs the exploration loop for `f` under `config`. Panics with a full
/// interleaving trace if any execution fails.
pub(crate) fn explore(
    config: Config,
    allow_incomplete: bool,
    f: Arc<dyn Fn() + Send + Sync>,
) -> Report {
    assert!(
        CURRENT.with(|c| c.borrow().is_none()),
        "interleave::check cannot be nested inside a model closure"
    );
    let _serial = EXPLORATION.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Arc::new(Engine::new(config.clone()));
    let mut iterations = 0usize;
    let mut complete = true;
    loop {
        iterations += 1;
        // Fresh iteration: bump the epoch (invalidates cached static
        // handles) and reset all per-execution state, keeping the path.
        {
            let mut g = engine.lock();
            g.epoch = EPOCH.fetch_add(1, StdOrdering::Relaxed) + 1;
            g.threads.clear();
            g.os_handles.clear();
            g.active = 0;
            g.alive = 1;
            g.preemptions = 0;
            g.locations.clear();
            g.mutexes.clear();
            g.condvars.clear();
            g.rwlocks.clear();
            g.cells.clear();
            g.events.clear();
            g.events_dropped = 0;
            g.failure = None;
            g.aborting = false;
            g.iteration_done = false;
            g.path.cursor = 0;
            let mut root = ThreadSt::new({
                let mut c = VClock::new();
                c.tick(0);
                c
            });
            root.granted = true;
            g.threads.push(root);
            let engine2 = Arc::clone(&engine);
            let f2 = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name("interleave-0".to_string())
                .spawn(move || run_model_thread(engine2, 0, Box::new(move || f2())))
                .expect("failed to spawn the root model OS thread");
            g.os_handles.push(handle);
        }
        let handles = {
            let mut g = engine.lock();
            while !g.iteration_done {
                g = engine.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            std::mem::take(&mut g.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let (failure, exhausted) = {
            let mut g = engine.lock();
            let failure = g.failure.take();
            let exhausted = failure.is_none() && !g.path.advance();
            (failure, exhausted)
        };
        if let Some(fail) = failure {
            let mut msg = format!(
                "interleave: model check failed after {iterations} execution(s)\n  cause: {}\n",
                fail.message
            );
            if fail.dropped > 0 {
                msg.push_str(&format!(
                    "  trace (last {} events; {} earlier dropped):\n",
                    fail.trace.len(),
                    fail.dropped
                ));
            } else {
                msg.push_str("  trace:\n");
            }
            for line in &fail.trace {
                msg.push_str(line);
                msg.push('\n');
            }
            msg.push_str(&format!("  schedule path: {}\n", fail.path));
            panic!("{msg}");
        }
        if exhausted {
            break;
        }
        if iterations >= config.max_iterations {
            complete = false;
            break;
        }
    }
    if !complete && !allow_incomplete {
        panic!(
            "interleave: exploration budget exceeded ({iterations} executions without \
             exhausting the schedule tree); raise max_iterations or set allow_incomplete"
        );
    }
    Report {
        iterations,
        complete,
    }
}
