//! Shadow `thread::spawn` / `JoinHandle` for model closures.

use std::sync::{Arc, Mutex as StdMutex};

use crate::engine::{panic_abort, with_current};

/// Spawns a model thread. The closure runs on a real OS thread, but only
/// when the exploration engine hands it the baton.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let id = with_current(|e, me| {
        e.spawn_thread(
            me,
            Box::new(move || {
                let value = f();
                *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
            }),
        )
    });
    JoinHandle { id, slot }
}

/// Handle to a spawned model thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    id: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes and returns its
    /// value. A panicking child aborts the whole iteration, so unlike std
    /// this never returns `Err` in an execution that survives.
    pub fn join(self) -> std::thread::Result<T> {
        with_current(|e, me| e.join_thread(me, self.id));
        match self.slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
            Some(value) => Ok(value),
            // The child panicked; its failure is already recorded and the
            // iteration is tearing down — unwind quietly.
            None => panic_abort(),
        }
    }
}

/// Pure schedule point: lets the explorer switch threads with no memory
/// effect, mirroring [`std::thread::yield_now`].
pub fn yield_now() {
    with_current(|e, me| e.yield_point(me));
}
