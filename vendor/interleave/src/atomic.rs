//! Shadow atomic integer and bool types.
//!
//! Each shadow atomic is a `const`-constructible handle: the initial value
//! plus a real `AtomicU64` that caches a `(epoch, location-id)` pair. The
//! location itself — modification order, per-thread read floors — lives in
//! the engine and is lazily re-registered each iteration, which is what lets
//! `static` shadow atomics work across iterations with fresh state.

use std::sync::atomic::AtomicU64 as StdAtomicU64;

pub use std::sync::atomic::Ordering;

use crate::engine::with_current;

/// Issues a shadow memory fence on the calling model thread.
///
/// `Release` fences stamp later relaxed stores with the current clock;
/// `Acquire` fences publish the accumulated clocks of earlier relaxed
/// loads. `SeqCst` is modelled conservatively as `AcqRel` (no total order).
pub fn fence(order: Ordering) {
    with_current(|engine, me| engine.atomic_fence(me, order));
}

macro_rules! shadow_int {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $mask:expr) => {
        $(#[$doc])*
        pub struct $name {
            init: u64,
            handle: StdAtomicU64,
        }

        impl $name {
            /// Creates a shadow atomic holding `value` at iteration start.
            pub const fn new(value: $ty) -> Self {
                $name {
                    init: value as u64,
                    handle: StdAtomicU64::new(0),
                }
            }

            /// Model-checked load.
            pub fn load(&self, order: Ordering) -> $ty {
                with_current(|e, me| e.atomic_load(me, &self.handle, self.init, $mask, order)) as $ty
            }

            /// Model-checked store.
            pub fn store(&self, value: $ty, order: Ordering) {
                with_current(|e, me| {
                    e.atomic_store(me, &self.handle, self.init, $mask, order, value as u64)
                });
            }

            /// Model-checked swap.
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |_| Some(value as u64))
            }

            /// Model-checked wrapping add; returns the previous value.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some(old.wrapping_add(value as u64)))
            }

            /// Model-checked wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some(old.wrapping_sub(value as u64)))
            }

            /// Model-checked bitwise or; returns the previous value.
            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some(old | value as u64))
            }

            /// Model-checked bitwise and; returns the previous value.
            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some(old & value as u64))
            }

            /// Model-checked minimum; returns the previous value.
            pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some((old as $ty).min(value) as u64))
            }

            /// Model-checked maximum; returns the previous value.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                self.rmw(order, |old| Some((old as $ty).max(value) as u64))
            }

            /// Model-checked compare-exchange (the model has no spurious
            /// failures, so `_weak` and strong coincide).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                let (old, stored) = with_current(|e, me| {
                    e.atomic_rmw(me, &self.handle, self.init, $mask, success, failure, &mut |old| {
                        if old as $ty == current {
                            Some(new as u64)
                        } else {
                            None
                        }
                    })
                });
                if stored.is_some() {
                    Ok(old as $ty)
                } else {
                    Err(old as $ty)
                }
            }

            /// Model-checked compare-exchange; identical to the strong form.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Model-checked `fetch_update`: one atomic read-modify-write
            /// (never observes interference mid-update, matching the
            /// semantics of the std retry loop at the point it succeeds).
            pub fn fetch_update(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: impl FnMut($ty) -> Option<$ty>,
            ) -> Result<$ty, $ty> {
                let (old, stored) = with_current(|e, me| {
                    e.atomic_rmw(
                        me,
                        &self.handle,
                        self.init,
                        $mask,
                        set_order,
                        fetch_order,
                        &mut |old| f(old as $ty).map(|v| v as u64),
                    )
                });
                if stored.is_some() {
                    Ok(old as $ty)
                } else {
                    Err(old as $ty)
                }
            }

            fn rmw(&self, order: Ordering, mut f: impl FnMut(u64) -> Option<u64>) -> $ty {
                let (old, _) = with_current(|e, me| {
                    e.atomic_rmw(me, &self.handle, self.init, $mask, order, order, &mut f)
                });
                old as $ty
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0 as $ty)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Reading the value would be a visible op; keep Debug inert.
                write!(f, concat!(stringify!($name), "(<shadow>)"))
            }
        }
    };
}

shadow_int!(
    /// Shadow of [`std::sync::atomic::AtomicU8`].
    AtomicU8,
    u8,
    0xff
);
shadow_int!(
    /// Shadow of [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    u32,
    0xffff_ffff
);
shadow_int!(
    /// Shadow of [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    u64,
    u64::MAX
);
shadow_int!(
    /// Shadow of [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    usize,
    u64::MAX
);

/// Shadow of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    inner: AtomicU8,
}

impl AtomicBool {
    /// Creates a shadow atomic bool holding `value` at iteration start.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            inner: AtomicU8::new(value as u8),
        }
    }

    /// Model-checked load.
    pub fn load(&self, order: Ordering) -> bool {
        self.inner.load(order) != 0
    }

    /// Model-checked store.
    pub fn store(&self, value: bool, order: Ordering) {
        self.inner.store(value as u8, order);
    }

    /// Model-checked swap.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.inner.swap(value as u8, order) != 0
    }

    /// Model-checked compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(current as u8, new as u8, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }

    /// Model-checked compare-exchange; identical to the strong form.
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBool(<shadow>)")
    }
}
