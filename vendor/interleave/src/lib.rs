//! Offline vendored loom-style bounded model checker.
//!
//! `interleave` exhaustively explores thread interleavings — and, for
//! relaxed-memory atomics, which store each load observes — of a small
//! concurrent closure, failing with a full interleaving trace on any panic,
//! detected data race, or deadlock. The workspace uses it through the
//! `quclassi_sync` shim modules: protocol code compiled under
//! `--cfg quclassi_model` runs on the shadow types below, while normal
//! builds re-export plain `std::sync` and pay nothing.
//!
//! # How it works
//!
//! Model threads are real OS threads serialised by a baton: exactly one runs
//! at a time, and every *visible operation* (atomic access, fence, lock
//! operation, [`ModelCell`] access) is a schedule point. A DFS path records
//! every decision — which thread runs next, which store a relaxed load
//! observes — and backtracking over that path enumerates every execution
//! within a configurable preemption bound (DPOR-style exploration with the
//! bound as the reduction). Happens-before is tracked with vector clocks
//! per memory order: release stores carry the writer's clock, acquire loads
//! join it, release/acquire fences stamp and collect clocks, and RMW
//! operations carry release sequences.
//!
//! # Modelling limits (deliberate, documented)
//!
//! - `SeqCst` is treated as `AcqRel`: no single total order is modelled.
//!   Protocols that *need* sequential consistency (e.g. Dekker) may pass
//!   here incorrectly — the workspace linter independently flags `SeqCst`
//!   use, so nothing in-tree relies on it.
//! - Condvars have no spurious wakeups and wake FIFO; `wait_timeout` always
//!   times out immediately (the most hostile timer, and it keeps
//!   exploration finite).
//! - Loads observe any store not yet overwritten in their happens-before
//!   past; acquire joins *mask* stale stores, so correctly synchronised
//!   protocols stay cheap to explore.
//!
//! # Example
//!
//! ```
//! use interleave::sync::atomic::{AtomicBool, AtomicU64, Ordering};
//! use interleave::{check, thread};
//! use std::sync::Arc;
//!
//! let report = check(|| {
//!     let flag = Arc::new(AtomicBool::new(false));
//!     let data = Arc::new(AtomicU64::new(0));
//!     let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
//!     let t = thread::spawn(move || {
//!         d2.store(7, Ordering::Relaxed);
//!         f2.store(true, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) {
//!         // Release/acquire publication: 7 is guaranteed visible.
//!         assert_eq!(data.load(Ordering::Relaxed), 7);
//!     }
//!     t.join().unwrap();
//! });
//! assert!(report.complete);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atomic;
mod cell;
mod clock;
mod engine;
mod model_thread;
mod shim;

pub use cell::ModelCell;
pub use engine::Report;

/// Shadow counterparts of the `std::sync` types the workspace protocols
/// use. `Arc`/`Weak` are the real std types: reference counting is already
/// sound and the checker only needs to see the *protocol's* operations.
pub mod sync {
    pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult, Weak};

    pub use crate::shim::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };

    /// Shadow atomics and fences.
    pub mod atomic {
        pub use crate::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }
}

/// Shadow threading: [`thread::spawn`], [`thread::JoinHandle`],
/// [`thread::yield_now`].
pub mod thread {
    pub use crate::model_thread::{spawn, yield_now, JoinHandle};
}

/// Configures and runs an exploration. The defaults match [`check`].
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum *preemptive* context switches per execution (switches away
    /// from a thread that could have kept running). Voluntary switches at
    /// blocking points are always free. Default 2 — empirically, almost
    /// every real concurrency bug needs at most two preemptions.
    pub preemption_bound: usize,
    /// Executions to explore before giving up. Default 200 000.
    pub max_iterations: usize,
    /// Trailing visible operations kept for failure traces. Default 200.
    pub max_trace: usize,
    /// When true, hitting `max_iterations` returns `complete: false`
    /// instead of panicking. Default false.
    pub allow_incomplete: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_iterations: 200_000,
            max_trace: 200,
            allow_incomplete: false,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores every execution of `f` within the configured bounds.
    ///
    /// `f` runs once per execution and must be deterministic apart from the
    /// scheduling the checker controls.
    ///
    /// # Panics
    /// Panics with an interleaving trace if any execution panics, data
    /// races, or deadlocks; panics on budget exhaustion unless
    /// `allow_incomplete` is set.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        engine::explore(
            engine::Config {
                preemption_bound: self.preemption_bound,
                max_iterations: self.max_iterations,
                max_trace: self.max_trace,
            },
            self.allow_incomplete,
            std::sync::Arc::new(f),
        )
    }
}

/// Explores every execution of `f` with the default [`Builder`] bounds.
///
/// # Panics
/// See [`Builder::check`].
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
