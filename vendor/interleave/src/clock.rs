//! Vector clocks: the happens-before backbone of the checker.

/// A vector clock over model-thread ids.
///
/// `clock[t]` is the number of visible operations of thread `t` that are
/// known (transitively, through synchronises-with edges) to have happened
/// before the point this clock describes. Clocks grow on demand; missing
/// entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// An empty clock (all components zero).
    pub fn new() -> Self {
        VClock { ticks: Vec::new() }
    }

    /// The component for thread `t`.
    pub fn get(&self, t: usize) -> u64 {
        self.ticks.get(t).copied().unwrap_or(0)
    }

    /// Sets the component for thread `t`.
    pub fn set(&mut self, t: usize, v: u64) {
        if self.ticks.len() <= t {
            self.ticks.resize(t + 1, 0);
        }
        self.ticks[t] = v;
    }

    /// Advances thread `t`'s own component by one.
    pub fn tick(&mut self, t: usize) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    /// Joins `other` into `self` (component-wise max).
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (mine, theirs) in self.ticks.iter_mut().zip(other.ticks.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether every component of `self` is ≤ the matching one in `other`,
    /// i.e. the point described by `self` happened before (or equals) the
    /// point described by `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(t, &v)| v <= other.get(t))
    }
}

impl std::fmt::Display for VClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.ticks.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_order() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(VClock::new().le(&a));
    }
}
