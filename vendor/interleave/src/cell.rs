//! `ModelCell`: plain (non-atomic) shared data with data-race detection.

use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Mutex as StdMutex;

use crate::engine::with_current;

/// A cell of plain shared data. Every access is checked against the
/// happens-before graph: two accesses to the same cell, at least one a
/// write, with neither ordered before the other, fail the execution as a
/// data race — exactly the accesses that would be undefined behaviour on
/// real hardware. Storage sits behind a std mutex so the checker itself
/// needs no `unsafe`; the engine's serialisation makes it uncontended.
#[derive(Debug)]
pub struct ModelCell<T> {
    handle: StdAtomicU64,
    data: StdMutex<T>,
}

impl<T> ModelCell<T> {
    /// Creates a cell holding `value`.
    pub const fn new(value: T) -> Self {
        ModelCell {
            handle: StdAtomicU64::new(0),
            data: StdMutex::new(value),
        }
    }

    /// Race-checked read access.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        with_current(|e, me| e.cell_access(me, &self.handle, false));
        f(&self.data.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Race-checked write access.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        with_current(|e, me| e.cell_access(me, &self.handle, true));
        f(&mut self.data.lock().unwrap_or_else(|p| p.into_inner()))
    }
}
