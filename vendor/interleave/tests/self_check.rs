//! Self-tests for the model checker: correct protocols must pass
//! exhaustively, and canonical broken protocols must be caught. The
//! catching half is what makes the serve-side mutation proofs meaningful —
//! checker power is demonstrated here, not assumed.

use std::sync::Arc;

use interleave::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use interleave::sync::{Condvar, Mutex};
use interleave::{check, thread, Builder, ModelCell};

// ---------------------------------------------------------------------
// Protocols that must pass
// ---------------------------------------------------------------------

#[test]
fn release_acquire_publication_holds() {
    let report = check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 7, "publication violated");
        }
        t.join().unwrap();
    });
    assert!(report.complete, "exploration must exhaust the tree");
    assert!(report.iterations > 1, "must explore more than one schedule");
}

#[test]
fn fence_based_publication_holds() {
    let report = check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(9, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            fence(Ordering::Acquire);
            assert_eq!(
                data.load(Ordering::Relaxed),
                9,
                "fence publication violated"
            );
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn mutex_protects_plain_data() {
    let report = check(|| {
        let cell = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            *c2.lock().unwrap() += 1;
        });
        *cell.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*cell.lock().unwrap(), 2, "an increment was lost");
    });
    assert!(report.complete);
}

#[test]
fn mutex_synchronises_model_cells() {
    // The same unsynchronised access that fails in
    // `unsynchronised_cell_write_is_a_data_race`, but under a mutex: the
    // lock's happens-before edges must silence the race detector.
    let report = check(|| {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(ModelCell::new(0u64));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
        let t = thread::spawn(move || {
            let _g = l2.lock().unwrap();
            c2.with_mut(|v| *v += 1);
        });
        {
            let _g = lock.lock().unwrap();
            cell.with_mut(|v| *v += 1);
        }
        t.join().unwrap();
        assert_eq!(cell.with(|v| *v), 2);
    });
    assert!(report.complete);
}

#[test]
fn rmw_increments_never_lose_updates() {
    let report = check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "atomic RMW lost an update");
    });
    assert!(report.complete);
}

#[test]
fn condvar_handoff_completes() {
    let report = check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock().unwrap();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (lock, cv) = &*state;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn relaxed_loads_do_observe_stale_values() {
    // Sanity check on the weak-memory model itself: without any ordering
    // there must exist an execution where the reader misses the write even
    // though the writer has already finished... detectable because the
    // model branches on the observed value. We count executions where a
    // stale value was seen; if the model were sequentially consistent the
    // assert below would fail the whole test.
    use std::sync::atomic::AtomicUsize as RealAtomicUsize;
    let stale = Arc::new(RealAtomicUsize::new(0));
    let stale2 = Arc::clone(&stale);
    let report = check(move || {
        let x = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (x2, f2) = (Arc::clone(&x), Arc::clone(&flag));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) && x.load(Ordering::Relaxed) == 0 {
            stale2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
    assert!(
        stale.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the weak-memory model never produced a stale read through a relaxed flag"
    );
}

// ---------------------------------------------------------------------
// Protocols that must FAIL — checker power
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "publication violated")]
fn relaxed_publication_is_caught() {
    check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed); // bug: needs Release
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 7, "publication violated");
        }
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "lost update")]
fn load_store_race_is_caught() {
    check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed); // bug: not atomic
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
}

#[test]
#[should_panic(expected = "data race")]
fn unsynchronised_cell_write_is_a_data_race() {
    check(|| {
        let cell = Arc::new(ModelCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|v| *v += 1);
        });
        cell.with_mut(|v| *v += 1); // bug: no synchronisation at all
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_deadlock_is_caught() {
    check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (lock, cv) = &*s2;
            // Bug: notify before publishing, and without holding the lock.
            // If the waiter checks `ready` first but parks after this
            // notify fires, the wakeup is lost forever.
            cv.notify_one();
            let mut ready = lock.lock().unwrap();
            *ready = true;
        });
        let (lock, cv) = &*state;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_inversion_is_caught() {
    check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
}

// ---------------------------------------------------------------------
// Exploration mechanics
// ---------------------------------------------------------------------

#[test]
fn static_shadow_atomics_reset_each_iteration() {
    static COUNTER: AtomicU64 = AtomicU64::new(5);
    let report = check(|| {
        // If state leaked across iterations the second execution would
        // start from 6 and this assert would fire.
        assert_eq!(COUNTER.load(Ordering::Relaxed), 5);
        COUNTER.fetch_add(1, Ordering::Relaxed);
        let t = thread::spawn(|| {
            COUNTER.fetch_add(1, Ordering::Relaxed);
        });
        t.join().unwrap();
        assert_eq!(COUNTER.load(Ordering::Relaxed), 7);
    });
    assert!(report.complete);
    assert!(report.iterations > 1);
}

#[test]
fn iteration_budget_is_enforced() {
    let mut b = Builder::new();
    b.max_iterations = 3;
    b.allow_incomplete = true;
    let report = b.check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Ordering::Relaxed);
            x2.fetch_add(1, Ordering::Relaxed);
        });
        x.fetch_add(1, Ordering::Relaxed);
        x.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
    });
    assert!(!report.complete, "tiny budget cannot exhaust this tree");
    assert_eq!(report.iterations, 3);
}

#[test]
fn preemption_bound_zero_still_runs_every_thread() {
    let mut b = Builder::new();
    b.preemption_bound = 0;
    let report = b.check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.complete);
}
