//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `bench_function` / `bench_with_input` /
//! `sample_size`, [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm-up, then a fixed number of
//! timed samples with mean / min / max reported in ns per iteration — but
//! fully functional, so `cargo bench` produces comparable numbers run to
//! run. Honors `--bench` (ignored) and a substring filter argument like the
//! real harness, so `cargo bench <name>` narrows what runs.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value. Re-exported for parity with
/// `criterion::black_box`; prefer `std::hint::black_box` in new code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handle passed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; any other free argument is a
        // substring filter on benchmark ids, as in real criterion. `--test`
        // selects smoke mode: every benchmark routine runs exactly once,
        // untimed — what CI uses to keep benches compiling and working
        // without paying for measurements.
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.filter.as_deref(), id, 20, self.test_mode, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full_id) {
            run_one(
                None,
                &full_id,
                self.sample_size,
                self.criterion.test_mode,
                &mut f,
            );
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full_id) {
            run_one(
                None,
                &full_id,
                self.sample_size,
                self.criterion.test_mode,
                |b| f(b, input),
            );
        }
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id string; lets `bench_*` accept both
/// [`BenchmarkId`] and plain strings.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            // Smoke mode (`--test`): exercise the routine once, untimed.
            black_box(routine());
            return;
        }
        // Warm-up and auto-calibration: aim for samples of >= ~1 ms so the
        // clock resolution doesn't dominate, capped to keep benches quick.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        // A routine may call b.iter more than once; only the last call's
        // samples are reported, keeping them consistent with its iteration
        // count.
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: Option<&str>,
    id: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    if let Some(fl) = filter {
        if !id.contains(fl) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_count: sample_size,
        iters_per_sample: 1,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("Testing {id} ... ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / bencher.iters_per_sample as f64;
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples.iter().map(per_iter).fold(0.0f64, f64::max);
    println!(
        "{id:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).into_benchmark_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(17).into_benchmark_id(), "17");
    }

    #[test]
    fn smoke_mode_runs_routine_once_untimed() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut iterations = 0u32;
        c.bench_function("smoke", |b| b.iter(|| iterations += 1));
        assert_eq!(
            iterations, 1,
            "--test mode must run the routine exactly once"
        );
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2).bench_function("noop", |b| {
                ran += 1;
                b.iter(|| black_box(1 + 1))
            });
            group.finish();
        }
        assert_eq!(ran, 1);
    }
}
