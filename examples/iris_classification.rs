//! Iris multi-class classification with all three QuClassi architectures
//! (QC-S, QC-SD, QC-SDE) plus a per-class breakdown via the confusion
//! matrix — the workload behind the paper's Fig. 6.
//!
//! ```text
//! cargo run -p quclassi-examples --example iris_classification
//! ```

use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use quclassi_infer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);

    for config in [
        QuClassiConfig::qc_s(4, 3),
        QuClassiConfig::qc_sd(4, 3),
        QuClassiConfig::qc_sde(4, 3),
    ] {
        let mut model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
        let name = model.stack().architecture_name();
        let trainer = Trainer::new(
            TrainingConfig {
                epochs: 20,
                learning_rate: 0.05,
                ..Default::default()
            },
            FidelityEstimator::analytic(),
        );
        trainer
            .fit(&mut model, &train.features, &train.labels, &mut rng)
            .expect("training succeeds");

        // Freeze the trained model into the compiled serving artifact and
        // score the whole test split in one batched call (bit-identical to
        // per-sample `model.predict` under the analytic estimator).
        let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic())
            .expect("compilation succeeds");
        let predictions: Vec<usize> = compiled
            .predict_many(
                &test.features,
                &BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
                0,
            )
            .expect("batched serving succeeds")
            .into_iter()
            .map(|p| p.label)
            .collect();
        let cm = ConfusionMatrix::new(&predictions, &test.labels, 3).unwrap();
        println!(
            "\n{name}: {} parameters, test accuracy {}",
            model.parameter_count(),
            percent(cm.accuracy())
        );
        println!("{}", cm.to_text());
        for (c, species) in iris::CLASS_NAMES.iter().enumerate() {
            println!(
                "  {species:<12} precision {:.3}  recall {:.3}  f1 {:.3}",
                cm.precision(c),
                cm.recall(c),
                cm.f1(c)
            );
        }
    }
}
