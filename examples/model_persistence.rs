//! Saving and reloading a trained QuClassi model with the plain-text format
//! from `quclassi::io` — train once, persist to disk, reload, and verify the
//! predictions are identical.
//!
//! ```text
//! cargo run -p quclassi-examples --example model_persistence
//! ```

use quclassi::io::{model_from_string, model_to_string};
use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);

    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 12,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train.features, &train.labels, &mut rng)
        .expect("training succeeds");

    // Persist to a file under the system temp directory.
    let serialized = model_to_string(&model);
    let path = std::env::temp_dir().join("quclassi_iris_model.txt");
    std::fs::write(&path, &serialized).expect("model file written");
    println!("saved trained model to {}", path.display());
    println!("file size: {} bytes", serialized.len());

    // Reload and verify predictions agree exactly.
    let restored_text = std::fs::read_to_string(&path).expect("model file read");
    let restored = model_from_string(&restored_text).expect("model parses");
    let estimator = FidelityEstimator::analytic();
    let mut mismatches = 0;
    for x in &test.features {
        let a = model.predict(x, &estimator, &mut rng).unwrap();
        let b = restored.predict(x, &estimator, &mut rng).unwrap();
        if a != b {
            mismatches += 1;
        }
    }
    let acc = restored
        .evaluate_accuracy(&test.features, &test.labels, &estimator, &mut rng)
        .unwrap();
    println!("restored model test accuracy: {}", percent(acc));
    println!("prediction mismatches after reload: {mismatches}");
    assert_eq!(mismatches, 0, "reloaded model must predict identically");
}
