//! Saving and reloading a trained QuClassi model with the plain-text format
//! from `quclassi::io` — train once, persist to disk, reload, and verify the
//! predictions are identical.
//!
//! ```text
//! cargo run -p quclassi-examples --example model_persistence
//! ```

use quclassi::io::{model_from_string, model_to_string};
use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use quclassi_infer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);

    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 12,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train.features, &train.labels, &mut rng)
        .expect("training succeeds");

    // Persist to a file under the system temp directory.
    let serialized = model_to_string(&model);
    let path = std::env::temp_dir().join("quclassi_iris_model.txt");
    std::fs::write(&path, &serialized).expect("model file written");
    println!("saved trained model to {}", path.display());
    println!("file size: {} bytes", serialized.len());

    // Reload, compile for serving, and verify predictions agree exactly:
    // the save → load → compile pipeline is how a trained model ships.
    let restored_text = std::fs::read_to_string(&path).expect("model file read");
    let restored = model_from_string(&restored_text).expect("model parses");
    let estimator = FidelityEstimator::analytic();
    let compiled =
        CompiledModel::compile(&restored, estimator.clone()).expect("restored model compiles");
    let batch = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
    let served = compiled
        .predict_many(&test.features, &batch, 0)
        .expect("batched serving succeeds");
    let mut mismatches = 0;
    for (x, p) in test.features.iter().zip(served.iter()) {
        let a = model.predict(x, &estimator, &mut rng).unwrap();
        if a != p.label {
            mismatches += 1;
        }
    }
    let acc = compiled
        .evaluate_accuracy(&test.features, &test.labels, &batch, 0)
        .unwrap();
    println!("restored compiled-model test accuracy: {}", percent(acc));
    println!("prediction mismatches after reload + compile: {mismatches}");
    assert_eq!(
        mismatches, 0,
        "reloaded compiled model must predict identically"
    );
}
