//! Train-while-serve, end to end: a runtime serves live iris traffic
//! without interruption while an `OnlineLearner` trains candidates on a
//! replayed stream, shadow-evaluates them on mirrored traffic, promotes
//! the ones that pass the accuracy + latency gate, and — when a scripted
//! fault pushes a corrupted candidate past a bypassed gate — rolls the
//! regression back within one cycle. Not a single request is dropped.
//!
//! ```text
//! cargo run --release -p quclassi-examples --example online_learning
//! ```
//!
//! Knobs: `QUCLASSI_ONLINE_WINDOW`, `QUCLASSI_SHADOW_RATE`,
//! `QUCLASSI_PROMOTE_MIN_ACC` (plus the serving knobs the `serving`
//! example documents).

use quclassi::prelude::*;
use quclassi_datasets::stream::ReplayStream;
use quclassi_examples::percent;
use quclassi_infer::CompiledModel;
use quclassi_serve::prelude::*;
use quclassi_serve::{CycleOutcome, Fault, FaultPlan, OnlineLearner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Deploy v1: an *untrained* iris model. The learner's whole job is
    //    to grow something better next to live traffic.
    let base =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let v1 = CompiledModel::compile(&base, FidelityEstimator::analytic()).unwrap();
    let runtime = ServeRuntime::start(
        ServeConfig::from_env().expect("valid serve configuration"),
        BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
    )
    .unwrap();
    runtime.deploy("iris", v1).unwrap();
    println!("deployed iris v1 (untrained)");

    // 2. Live traffic: four producers hammer the runtime for the entire
    //    run, across every promotion and rollback.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicUsize::new(0));
    let mut feed = ReplayStream::iris(404);
    let (pool, _) = feed.next_window(24);
    let pool = Arc::new(pool);
    let producers: Vec<_> = (0..4)
        .map(|producer| {
            let client = runtime.client();
            let stop = Arc::clone(&stop);
            let sent = Arc::clone(&sent);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut answered = 0usize;
                let mut max_version = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let x = &pool[(producer * 5 + i * 3) % pool.len()];
                    match client.predict("iris", x) {
                        Ok(reply) => {
                            assert!(
                                reply.version >= max_version,
                                "versions only ever move forward"
                            );
                            max_version = reply.version;
                            sent.fetch_add(1, Ordering::Relaxed);
                            answered += 1;
                        }
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(other) => panic!("producer {producer}: {other}"),
                    }
                    i += 1;
                }
                answered
            })
        })
        .collect();

    // 3. The fault schedule: seeded, reproducible, printed up front. Cycle
    //    3 corrupts the candidate *and* bypasses the gate — the injected
    //    regression the learner must detect and roll back on cycle 4.
    let plan = FaultPlan::new()
        .inject(3, Fault::CorruptCandidate)
        .inject(3, Fault::BypassGate);
    assert_eq!(
        FaultPlan::seeded(7, 6, 0.5),
        FaultPlan::seeded(7, 6, 0.5),
        "seeded schedules replay bit-for-bit"
    );
    println!("fault schedule: corrupt + bypass-gate at cycle 3 (deterministic)");

    // 4. Start the learner: stream windows of replayed iris samples, train
    //    a candidate per window, gate, shadow, promote. The env knobs
    //    (QUCLASSI_ONLINE_WINDOW / QUCLASSI_SHADOW_RATE /
    //    QUCLASSI_PROMOTE_MIN_ACC) land on top of the defaults.
    let mut config = OnlineConfig::from_env().expect("valid online configuration");
    config.window = 30;
    config.epochs_per_cycle = 3;
    config.min_shadow_requests = 8;
    config.shadow_wait = Duration::from_secs(5);
    config.promote_min_accuracy = config.promote_min_accuracy.min(0.6);
    config.accuracy_tolerance = 1.0;
    config.max_p99_ratio = 50.0;
    config.rollback_min_accuracy = 0.5;
    config.max_cycles = Some(6);
    config.seed = 21;
    let trainer = Trainer::new(
        TrainingConfig {
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let learner = OnlineLearner::start_with_faults(
        &runtime,
        "iris",
        base,
        trainer,
        ReplayStream::iris(7),
        config,
        plan,
    )
    .unwrap();
    println!("online learner started: 6 cycles of train → shadow → gate\n");

    // 5. Wait for the learner to finish its cycles, then stop traffic.
    let report = learner.join();
    stop.store(true, Ordering::Relaxed);
    let answered: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();

    println!("== learner cycles ==");
    for cycle in &report.cycles {
        let accuracy = |a: Option<f64>| a.map_or("   -  ".to_string(), percent);
        let shadow = cycle.shadow.as_ref().map_or(String::new(), |s| {
            format!(
                " | shadow: {} reqs, agree {}, p99 ratio {:.2}",
                s.requests,
                percent(s.agreement_rate()),
                s.p99_ratio()
            )
        });
        println!(
            "cycle {}: live {} cand {} → {:?}{}",
            cycle.cycle,
            percent(cycle.live_accuracy),
            accuracy(cycle.candidate_accuracy),
            cycle.outcome,
            shadow
        );
    }
    assert!(
        report.promotions() >= 1,
        "the learner should promote at least one candidate"
    );
    assert!(
        matches!(report.outcome_at(3), Some(&CycleOutcome::Promoted { .. })),
        "cycle 3's corrupted candidate slips through the bypassed gate"
    );
    assert!(
        matches!(report.outcome_at(4), Some(&CycleOutcome::RolledBack { .. })),
        "cycle 4 detects the regression and rolls back"
    );

    // 6. The serving ledger: every single request answered, none dropped,
    //    across promotions AND the rollback.
    let metrics = runtime.shutdown();
    println!("\n== serving metrics ==");
    println!(
        "completed {} / sent {} (failed {}, dropped 0 — exact match enforced below)",
        metrics.completed,
        sent.load(Ordering::Relaxed),
        metrics.failed
    );
    assert_eq!(metrics.completed, answered as u64);
    assert_eq!(metrics.completed, sent.load(Ordering::Relaxed) as u64);
    assert_eq!(metrics.failed, 0);
    println!(
        "promotions {}, rollbacks {}, candidates rejected {}, train cycles {}",
        metrics.promotions, metrics.rollbacks, metrics.candidates_rejected, metrics.train_cycles
    );
    println!(
        "shadow: {} mirrored requests over {} batches",
        metrics.shadow_requests, metrics.shadow_batches
    );
    println!(
        "latency p50 {:.1}µs p99 {:.1}µs over {} live requests",
        metrics.latency.p50_us(),
        metrics.latency.p99_us(),
        metrics.completed
    );
    println!("\nzero dropped requests across train → shadow → promote → rollback ✓");
}
