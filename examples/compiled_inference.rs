//! The train → compile → serve pipeline: freeze a trained QuClassi model
//! into a `CompiledModel` and serve it — batched predictions, top-k,
//! per-sample confidence, and the encoding-fingerprint LRU cache.
//!
//! ```text
//! cargo run --release -p quclassi-examples --example compiled_inference
//! ```

use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use quclassi_infer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Train a QC-SDE Iris model (the "offline" phase).
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 15,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train.features, &train.labels, &mut rng)
        .expect("training succeeds");

    // 2. Compile: every circuit lowering and class-state preparation
    //    happens exactly once, here.
    let start = Instant::now();
    let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic())
        .expect("compilation succeeds");
    println!(
        "compiled {} ({} classes, {} parameters) in {:?}",
        model.stack().architecture_name(),
        model.num_classes(),
        model.parameter_count(),
        start.elapsed()
    );

    // 3. Serve a batch: one call fans samples × classes over the pool
    //    (QUCLASSI_THREADS, or all cores). Thread count never changes the
    //    results — only how fast they arrive.
    let batch = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
    let start = Instant::now();
    let predictions = compiled
        .predict_many(&test.features, &batch, 0)
        .expect("batched serving succeeds");
    println!(
        "served {} samples on {} thread(s) in {:?}",
        predictions.len(),
        batch.threads(),
        start.elapsed()
    );

    // 4. Per-sample serving detail: label, confidence, margin, top-k.
    println!("\nfirst five predictions:");
    for (p, (x, &y)) in predictions
        .iter()
        .zip(test.features.iter().zip(test.labels.iter()))
        .take(5)
    {
        let top = p.top_k(2);
        println!(
            "  {:28} -> {} ({}; margin {:.3}; runner-up {} @ {}) truth {}",
            format!("{x:.2?}"),
            iris::CLASS_NAMES[p.label],
            percent(p.confidence()),
            p.margin(),
            iris::CLASS_NAMES[top[1].0],
            percent(top[1].1),
            iris::CLASS_NAMES[y],
        );
    }

    let correct = predictions
        .iter()
        .zip(test.labels.iter())
        .filter(|(p, &y)| p.label == y)
        .count();
    println!(
        "\ntest accuracy: {}",
        percent(correct as f64 / test.labels.len() as f64)
    );

    // 5. Repeated traffic hits the encoding-fingerprint LRU cache.
    for _ in 0..3 {
        compiled
            .predict_many(&test.features, &batch, 0)
            .expect("repeat serving succeeds");
    }
    let stats = compiled.cache_stats();
    println!(
        "cache after 3 repeat batches: {} entries, {} hits / {} misses ({} hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        percent(stats.hit_rate())
    );
}
