//! The serving runtime end to end: start `quclassi-serve`, deploy a
//! model, serve concurrent traffic, hot-swap a better version with zero
//! downtime, talk to the same runtime over the TCP wire protocol, and
//! read the metrics.
//!
//! ```text
//! cargo run --release -p quclassi-examples --example serving
//! ```

use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use quclassi_infer::CompiledModel;
use quclassi_serve::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_iris(epochs: usize, rng: &mut StdRng) -> (CompiledModel, Vec<Vec<f64>>, Vec<usize>) {
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);
    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_sde(4, 3), rng).unwrap();
    Trainer::new(
        TrainingConfig {
            epochs,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    )
    .fit(&mut model, &train.features, &train.labels, rng)
    .expect("training succeeds");
    let compiled = CompiledModel::compile(&model, FidelityEstimator::analytic()).unwrap();
    (compiled, test.features, test.labels)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Start the runtime: bounded queue, micro-batching scheduler, and a
    //    thread pool sized from the environment. The batching knobs come
    //    from QUCLASSI_MAX_BATCH / QUCLASSI_BATCH_WINDOW_US when set.
    let config = ServeConfig::from_env().expect("valid serve configuration");
    let executor = BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS");
    println!(
        "starting runtime: max_batch={}, window={:?}, queue={}, {} executor thread(s)",
        config.max_batch,
        config.batch_window,
        config.queue_capacity,
        executor.threads()
    );
    let runtime = ServeRuntime::start(config, executor).unwrap();

    // 2. Deploy v1: a barely trained model (5 epochs).
    let (v1, test_x, test_y) = train_iris(5, &mut rng);
    let version = runtime.deploy("iris", v1).unwrap();
    println!("deployed iris v{version}");

    // 3. Serve concurrent traffic through in-process clients.
    let serve_all = |tag: &str| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = runtime.client();
                let xs = test_x.clone();
                let ys = test_y.clone();
                std::thread::spawn(move || {
                    let mut correct = 0usize;
                    for (x, &y) in xs.iter().zip(ys.iter()).skip(t).step_by(4) {
                        let reply = client.predict("iris", x).unwrap();
                        if reply.prediction.label == y {
                            correct += 1;
                        }
                    }
                    correct
                })
            })
            .collect();
        let correct: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        println!(
            "{tag}: test accuracy {} over {} concurrent requests",
            percent(correct as f64 / test_x.len() as f64),
            test_x.len()
        );
    };
    serve_all("v1 (5 epochs)");

    // 4. Hot-swap to v2 (25 epochs) with zero downtime: the new artifact
    //    is warmed before the atomic switch; in-flight v1 requests drain
    //    on v1.
    let (v2, _, _) = train_iris(25, &mut rng);
    let version = runtime.deploy("iris", v2).unwrap();
    println!("hot-swapped to iris v{version} (warm → atomic switch → drain old)");
    serve_all("v2 (25 epochs)");

    // 5. The same runtime over TCP: length-prefixed JSON on loopback,
    //    with the hardening knobs (connection cap, socket deadlines) read
    //    from QUCLASSI_MAX_CONNECTIONS / QUCLASSI_WIRE_TIMEOUT_MS — a
    //    malformed value fails startup here, never a silent default.
    let wire_config = WireConfig::from_env().expect("valid wire configuration");
    let server = WireServer::start_with("127.0.0.1:0", runtime.client(), wire_config).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    wire.ping().unwrap();
    let remote = wire.predict("iris", &test_x[0]).unwrap();
    println!(
        "wire predict @ {}: label {} from v{} (confidence via probabilities: {})",
        server.local_addr(),
        remote.label,
        remote.version,
        percent(remote.probabilities[remote.label])
    );

    // 5b. Request multiplexing: pipeline several predictions on the one
    //     connection without reading a response in between. Every request
    //     carries an auto-assigned `id` echoed verbatim on its response —
    //     the id, not arrival order, pairs them (the event loop may
    //     complete batches out of submission order).
    let mut pending = std::collections::BTreeSet::new();
    for x in test_x.iter().take(4) {
        pending.insert(wire.send_predict("iris", x).unwrap());
    }
    while !pending.is_empty() {
        let (id, response) = wire.recv_response().unwrap();
        let id = id.expect("id-tagged request gets an id-tagged response");
        assert!(pending.remove(&id), "response carries an unknown id");
        assert_eq!(
            response
                .get("ok")
                .and_then(quclassi_serve::json::Json::as_bool),
            Some(true)
        );
    }
    println!("pipelined 4 id-tagged predictions on one connection");
    server.shutdown();

    // 6. Metrics: latency percentiles, batching efficiency, cache hits.
    let metrics = runtime.shutdown();
    println!("\n== serving metrics ==");
    println!(
        "admitted {}, completed {}, rejected {}",
        metrics.admitted, metrics.completed, metrics.rejected
    );
    println!(
        "batches {}, mean occupancy {:.2}, flushes: size {}, deadline {}, close {}",
        metrics.batches,
        metrics.mean_batch_occupancy(),
        metrics.flush_on_size,
        metrics.flush_on_deadline,
        metrics.flush_on_close
    );
    println!(
        "latency p50 {:.1}µs, p90 {:.1}µs, p99 {:.1}µs; peak queue depth {}",
        metrics.latency.p50_us(),
        metrics.latency.p90_us(),
        metrics.latency.p99_us(),
        metrics.peak_queue_depth
    );
    for m in &metrics.models {
        println!(
            "model {} v{}: completed {}, cache hit rate {}, entries {}",
            m.name,
            m.version,
            m.stats.completed,
            percent(m.cache.hit_rate()),
            m.cache.entries
        );
    }
}
