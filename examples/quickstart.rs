//! Quickstart: train QuClassi on the Iris task and report test accuracy.
//!
//! ```text
//! cargo run -p quclassi-examples --example quickstart
//! ```

use quclassi::prelude::*;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Load and normalise the data (every feature into [0, 1]).
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);
    println!(
        "Iris: {} training / {} test samples, {} features, {} classes",
        train.len(),
        test.len(),
        train.dim(),
        train.num_classes
    );

    // 2. Build a QC-S QuClassi model: 4 features → 2 qubits per register,
    //    5-qubit SWAP-test circuit, 4 trainable parameters per class.
    let config = QuClassiConfig::qc_s(train.dim(), train.num_classes);
    println!(
        "model: {} qubits total, {} trainable parameters",
        config.total_qubits(),
        QuClassiModel::new(config.clone())
            .unwrap()
            .parameter_count()
    );
    let mut model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();

    // 3. Train with the paper's Algorithm 1 (cross-entropy on state fidelity,
    //    epoch-scaled parameter shift, SGD).
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 20,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    let history = trainer
        .fit_with_eval(
            &mut model,
            &train.features,
            &train.labels,
            Some(EvalSet {
                features: &test.features,
                labels: &test.labels,
            }),
            &mut rng,
        )
        .expect("training succeeds");

    for stats in &history.epochs {
        println!(
            "epoch {:>2}: loss {:.4}, test accuracy {}",
            stats.epoch,
            stats.mean_loss,
            percent(stats.eval_accuracy.unwrap_or(0.0))
        );
    }
    println!(
        "final test accuracy: {}",
        percent(history.final_accuracy().unwrap_or(0.0))
    );
}
