//! Binary classification of synthetic MNIST digits (3 vs 6): the full
//! pipeline the paper uses for Fig. 9 — image generation, PCA to 16
//! dimensions, min–max normalisation, 17-qubit QuClassi training, and a
//! comparison with a similarly-performing classical DNN.
//!
//! ```text
//! cargo run --release -p quclassi-examples --example mnist_binary
//! ```

use quclassi::prelude::*;
use quclassi_classical::network::{Mlp, MlpConfig};
use quclassi_classical::pca::Pca;
use quclassi_datasets::mnist;
use quclassi_datasets::preprocess::MinMaxScaler;
use quclassi_examples::percent;
use quclassi_infer::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(36);
    let per_class_train = 60;
    let per_class_test = 25;

    // 1. Generate digits and keep the (3, 6) pair.
    let full = mnist::generate(per_class_train + per_class_test, 36);
    let pair = full.filter_classes(&[3, 6]);
    println!(
        "one training sample of digit 3:\n{}",
        mnist::render_ascii(&pair.features[0])
    );

    // 2. Split, PCA to 16 dimensions (fitted on training pixels), normalise.
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut test_x = Vec::new();
    let mut test_y = Vec::new();
    let mut seen = [0usize; 2];
    for (x, &y) in pair.features.iter().zip(pair.labels.iter()) {
        if seen[y] < per_class_train {
            train_x.push(x.clone());
            train_y.push(y);
        } else {
            test_x.push(x.clone());
            test_y.push(y);
        }
        seen[y] += 1;
    }
    let pca = Pca::fit(&train_x, 16, &mut rng);
    let (_, train_z, test_z) =
        MinMaxScaler::fit_transform_pair(&pca.transform(&train_x), &pca.transform(&test_x));

    // 3. Train QuClassi QC-S (17 qubits, 32 trainable parameters).
    let config = QuClassiConfig::qc_s(16, 2);
    println!(
        "QuClassi-S: {} qubits, {} parameters",
        config.total_qubits(),
        QuClassiModel::new(config.clone())
            .unwrap()
            .parameter_count()
    );
    let mut model = QuClassiModel::with_random_parameters(config, &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 10,
            learning_rate: 0.1,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train_z, &train_y, &mut rng)
        .expect("training succeeds");
    // Score the test split through the compiled serving artifact
    // (bit-identical to the uncompiled analytic path, ~15× faster on this
    // 17-qubit shape — see BENCH_inference_throughput.json).
    let qc_acc = CompiledModel::compile(&model, FidelityEstimator::analytic())
        .unwrap()
        .evaluate_accuracy(
            &test_z,
            &test_y,
            &BatchExecutor::from_env(0).expect("invalid QUCLASSI_THREADS"),
            0,
        )
        .unwrap();

    // 4. A classical DNN with ~1218 parameters on the same data.
    let (dnn_cfg, dnn_params) = MlpConfig::with_target_params(16, 2, 1218);
    let mut dnn = Mlp::new(dnn_cfg, &mut rng);
    dnn.fit(&train_z, &train_y, 40, 0.1, None, &mut rng);
    let dnn_acc = dnn.evaluate_accuracy(&test_z, &test_y);

    println!("QuClassi-S  (32 params): test accuracy {}", percent(qc_acc));
    println!("DNN-{dnn_params}P: test accuracy {}", percent(dnn_acc));
    println!(
        "parameter reduction: {}",
        percent(1.0 - 32.0 / dnn_params as f64)
    );
}
