//! Running QuClassi through realistic device noise models — the scenario of
//! the paper's Section 5.4 (IBM-Q and IonQ executions).
//!
//! Trains a small Iris model on the ideal simulator, then evaluates the same
//! model through every device model in the catalog (exact density-matrix
//! noise + 8000-shot sampling) and reports the accuracy degradation and the
//! transpiled CNOT cost on each device.
//!
//! ```text
//! cargo run --release -p quclassi-examples --example noisy_hardware
//! ```

use quclassi::prelude::*;
use quclassi::swap_test::build_swap_test_circuit;
use quclassi_datasets::iris;
use quclassi_datasets::preprocess::normalize_split;
use quclassi_examples::percent;
use quclassi_sim::device::DeviceModel;
use quclassi_sim::executor::Executor;
use quclassi_sim::transpile::transpile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(54);
    let dataset = iris::load();
    let (train_raw, test_raw) = dataset.stratified_split(0.7, &mut rng);
    let (train, test) = normalize_split(&train_raw, &test_raw);

    let mut model =
        QuClassiModel::with_random_parameters(QuClassiConfig::qc_s(4, 3), &mut rng).unwrap();
    let trainer = Trainer::new(
        TrainingConfig {
            epochs: 15,
            learning_rate: 0.05,
            ..Default::default()
        },
        FidelityEstimator::analytic(),
    );
    trainer
        .fit(&mut model, &train.features, &train.labels, &mut rng)
        .expect("training succeeds");

    let ideal_acc = model
        .evaluate_accuracy(
            &test.features,
            &test.labels,
            &FidelityEstimator::analytic(),
            &mut rng,
        )
        .unwrap();
    println!("ideal simulator accuracy: {}", percent(ideal_acc));

    // Transpiled CNOT cost of one inference circuit per device.
    let (circuit, _) =
        build_swap_test_circuit(model.stack(), model.encoder(), &test.features[0]).unwrap();
    let bound = circuit.bind(model.class_params(0).unwrap()).unwrap();

    println!("\ndevice                 accuracy   cnots  routing-swaps");
    for device in DeviceModel::catalog() {
        let estimator = FidelityEstimator::swap_test(
            Executor::noisy_density(device.noise.clone()).with_shots(Some(8000)),
        );
        let acc = model
            .evaluate_accuracy(&test.features, &test.labels, &estimator, &mut rng)
            .unwrap();
        let routed = transpile(&bound, &device.coupling).expect("transpiles");
        println!(
            "{:<22} {:>8}   {:>5}  {:>5}",
            device.name,
            percent(acc),
            routed.cnot_count,
            routed.swaps_inserted
        );
    }
}
