//! Support crate for the runnable examples.
//!
//! The examples themselves live next to this package's manifest
//! (`examples/quickstart.rs`, `examples/iris_classification.rs`, …) and are
//! declared as explicit `[[example]]` targets; run one with, e.g.
//! `cargo run -p quclassi-examples --example quickstart`.
//!
//! This library exposes one helper shared by several examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Formats an accuracy as a percentage string with two decimals.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn percent_formatting() {
        assert_eq!(super::percent(0.9737), "97.37%");
        assert_eq!(super::percent(1.0), "100.00%");
    }
}
